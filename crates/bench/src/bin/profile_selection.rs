//! Before/after proof of the fused one-pass profiling, the allocation-free
//! execute hot path, and the prepared-execution-plan warm path.
//!
//! ```text
//! cargo run -p seer_bench --release --bin profile_selection             # full run
//! cargo run -p seer_bench --release --bin profile_selection -- --smoke  # CI smoke
//! cargo run -p seer_bench --release --bin profile_selection -- --check  # + golden check
//! cargo run -p seer_bench --release --bin profile_selection -- --mode streaming
//! ```
//!
//! The binary measures, on the pinned golden corpus (so numbers are
//! comparable across commits):
//!
//! 1. **Cold selection profiling passes** — fresh matrices, fresh engine:
//!    the fused profiler must run **exactly one** traversal per matrix for a
//!    full cold `execute` (plan miss + all eight kernel cost models + feature
//!    collection), where the pre-fused code ran ~10 redundant sweeps (one
//!    `MatrixProfile` per kernel model, plus the feature collector's
//!    `RowStats` pass and its own cost-model profile). The legacy cost is
//!    emulated by running the same fused pass 10x per matrix, which is what
//!    the old per-kernel derivations added up to.
//! 2. **Steady-state execute allocations** — with plan, profile, timing and
//!    prepared-plan caches warm, the engine's warm execute into a reused
//!    [`EngineWorkspace`] must perform **zero** heap allocations per request.
//!    `--mode prepared` (default) pins the prepared-plan path
//!    (`execute_into`); `--mode streaming` pins the PR-3 streaming baseline
//!    (`execute_streaming_into`); the allocating `execute` wrapper (the old
//!    hot path) is measured next to both.
//! 3. **Warm prepared vs streaming** — on the merge-path/ELL-heavy corpus
//!    slice (every matrix under `CSR,MP`, low-padding matrices additionally
//!    under `ELL,TM` — the kernels whose streaming `compute_into` re-derives
//!    partition tables / padded layouts per call), the prepared warm path
//!    must be **>= 1.5x** faster aggregate, allocation-free, bit-identical,
//!    and counter-verified: exactly one preparation per `(matrix, kernel)`
//!    miss, zero per hit.
//! 4. **Online recalibration** — a fleet device silently made 8x slower
//!    than modelled must lose placement within a bounded number of observed
//!    executions (EWMA correction factors), and win it back within a
//!    bounded number once the drift lifts (epsilon-greedy exploration).
//!
//! All properties are *asserted*, not just reported — the binary exits
//! non-zero if any regresses. With `--check` it additionally replays every
//! corpus selection against `tests/golden_selections.txt` (same corpus seed
//! and training config as `cargo test --test selection_golden`), proving
//! neither the fused profile nor the prepared plans changed any selection.
//! Results are written to `BENCH_selection.json` (override with `--out
//! PATH`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use seer_core::engine::{
    EngineStats, EngineWorkspace, ExplorationPolicy, RecalibrationConfig, SeerEngine,
};
use seer_core::training::TrainingConfig;
use seer_gpu::{DeviceRegistry, Fleet, Gpu, GpuSpec};
use seer_kernels::{kernel, ComputeScratch, KernelId, MatrixBenchmark};
use seer_sparse::collection::{generate, CollectionConfig, DatasetEntry, SizeScale};
use seer_sparse::MatrixProfile;

/// Counts every heap allocation in the process so the steady-state execute
/// path can be pinned at zero allocations per request.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Redundant full-matrix sweeps one cold 8-kernel selection performed before
/// the fused profile: one sampled `MatrixProfile` per kernel model (8), plus
/// the feature collector's `RowStats` pass and its cost model's profile.
const LEGACY_SWEEPS_PER_SELECTION: u64 = 10;

/// Which engine execute path the steady-state section pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The prepared-plan warm path (`execute_into`), the serving default.
    Prepared,
    /// The PR-3 streaming baseline (`execute_streaming_into`).
    Streaming,
}

struct Options {
    smoke: bool,
    check: bool,
    mode: Mode,
    out: String,
}

fn parse_options() -> Options {
    let mut options = Options {
        smoke: false,
        check: false,
        mode: Mode::Prepared,
        out: "BENCH_selection.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--check" => options.check = true,
            "--mode" => {
                options.mode = match args.next().as_deref() {
                    Some("prepared") => Mode::Prepared,
                    Some("streaming") => Mode::Streaming,
                    other => {
                        eprintln!("--mode takes 'prepared' or 'streaming', got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                options.out = args.next().expect("--out takes a path");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: profile_selection [--smoke] [--check] \
                     [--mode prepared|streaming] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    options
}

/// The corpus pinned by `tests/selection_golden.rs`: same seed, same scale,
/// same training config, so `--check` can compare against the committed
/// golden table line for line.
fn golden_corpus() -> Vec<DatasetEntry> {
    generate(&CollectionConfig {
        seed: 0x601D,
        matrices_per_family: 5,
        scale: SizeScale::Tiny,
    })
}

fn locate_golden_table() -> Option<String> {
    let candidates = [
        "tests/golden_selections.txt".to_string(),
        format!(
            "{}/../../tests/golden_selections.txt",
            env!("CARGO_MANIFEST_DIR")
        ),
    ];
    candidates
        .iter()
        .find_map(|path| std::fs::read_to_string(path).ok())
}

fn main() {
    let options = parse_options();
    let gpu = Gpu::default();

    // Train once; the engine under measurement shares the device and models.
    let collection = golden_corpus();
    let (engine, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the bench models");
    println!(
        "profile_selection: {} corpus matrices{}",
        collection.len(),
        if options.smoke { " (smoke)" } else { "" }
    );

    // ---- 1. Cold selection: profiling passes and time. -------------------
    // Fresh matrix values (the regenerated collection has empty profile
    // memos) against the engine's cold caches: a full cold execute — plan
    // miss, eight kernel cost models, possible feature collection — must
    // profile each matrix exactly once.
    let fresh = golden_corpus();
    let mut workspace = EngineWorkspace::new();
    let passes_before = MatrixProfile::passes();
    let cold_start = Instant::now();
    for entry in &fresh {
        let x = vec![1.0; entry.matrix.cols()];
        let _ = engine.execute_into(&entry.matrix, &x, 19, &mut workspace);
    }
    let cold_execute_secs = cold_start.elapsed().as_secs_f64();
    let cold_passes = MatrixProfile::passes() - passes_before;
    let engine_passes = engine.stats().profile_passes;
    assert_eq!(
        cold_passes,
        fresh.len() as u64,
        "cold execute must profile each matrix exactly once"
    );
    assert_eq!(
        engine_passes, cold_passes,
        "engine-attributed passes must match the global counter"
    );

    // Fleet-mode cold selection: ranking a 4-device heterogeneous fleet
    // evaluates the chosen kernel's cost models once per device, but the
    // fused profile feeding them is shared — still exactly one profiling
    // pass per matrix, not one per device.
    let fleet = Fleet::reference_heterogeneous();
    let fleet_engine = SeerEngine::with_fleet(fleet.clone(), engine.models_handle());
    let fleet_fresh = golden_corpus();
    let passes_before = MatrixProfile::passes();
    let fleet_start = Instant::now();
    for entry in &fleet_fresh {
        let _ = fleet_engine.select(&entry.matrix, 19);
    }
    let fleet_cold_secs = fleet_start.elapsed().as_secs_f64();
    let fleet_passes = MatrixProfile::passes() - passes_before;
    assert_eq!(
        fleet_passes,
        fleet_fresh.len() as u64,
        "fleet-mode cold selection must profile each matrix exactly once \
         (shared across {} devices), not once per device",
        fleet.len()
    );
    assert_eq!(
        fleet_engine.stats().profile_passes,
        fleet_passes,
        "fleet engine-attributed passes must match the global counter"
    );

    // The 8-kernel benchmark sweep (oracle/training path) on fresh matrices:
    // also exactly one pass per matrix.
    let fresh_bench = golden_corpus();
    let passes_before = MatrixProfile::passes();
    let bench_start = Instant::now();
    for entry in &fresh_bench {
        let _ = MatrixBenchmark::measure(&gpu, &entry.name, &entry.matrix, 1);
    }
    let cold_benchmark_secs = bench_start.elapsed().as_secs_f64();
    let bench_passes = MatrixProfile::passes() - passes_before;
    assert_eq!(
        bench_passes,
        fresh_bench.len() as u64,
        "an 8-kernel benchmark must profile each matrix exactly once"
    );

    // Legacy emulation: the pre-fused code re-derived the profile once per
    // kernel model plus twice in feature collection — run the same pass 10x
    // per matrix to time what those redundant sweeps cost.
    let legacy = golden_corpus();
    let legacy_start = Instant::now();
    for entry in &legacy {
        for _ in 0..LEGACY_SWEEPS_PER_SELECTION {
            let _ = MatrixProfile::compute(&entry.matrix);
        }
    }
    let legacy_profiling_secs = legacy_start.elapsed().as_secs_f64();
    let fused = golden_corpus();
    let fused_start = Instant::now();
    for entry in &fused {
        let _ = MatrixProfile::compute(&entry.matrix);
    }
    let fused_profiling_secs = fused_start.elapsed().as_secs_f64();

    println!("\ncold selection (per matrix):");
    println!("  profiling passes      before ~{LEGACY_SWEEPS_PER_SELECTION}   after 1 (measured: {} over {} matrices)",
        cold_passes, fresh.len());
    println!(
        "  profiling time        before {:.1}us   after {:.1}us   ({:.2}x)",
        1e6 * legacy_profiling_secs / legacy.len() as f64,
        1e6 * fused_profiling_secs / fused.len() as f64,
        legacy_profiling_secs / fused_profiling_secs.max(1e-12)
    );
    println!(
        "  cold execute          {:.1}us   cold 8-kernel benchmark {:.1}us",
        1e6 * cold_execute_secs / fresh.len() as f64,
        1e6 * cold_benchmark_secs / fresh_bench.len() as f64
    );
    println!(
        "  fleet cold select     {:.1}us/matrix over {} devices, 1 profiling pass/matrix \
         (measured: {} over {} matrices)",
        1e6 * fleet_cold_secs / fleet_fresh.len() as f64,
        fleet.len(),
        fleet_passes,
        fleet_fresh.len()
    );

    // ---- 2. Steady-state execute: zero allocations. ----------------------
    let hot = &collection[0].matrix;
    let x = vec![1.0; hot.cols()];
    let steady_iters: u64 = if options.smoke { 2_000 } else { 20_000 };
    let mode_label = match options.mode {
        Mode::Prepared => "execute_into (prepared)",
        Mode::Streaming => "execute_streaming_into",
    };
    // Warm every cache and the workspace buffers.
    for _ in 0..3 {
        let _ = engine.execute_into(hot, &x, 19, &mut workspace);
        let _ = engine.execute_streaming_into(hot, &x, 19, &mut workspace);
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let steady_start = Instant::now();
    for _ in 0..steady_iters {
        let _ = match options.mode {
            Mode::Prepared => engine.execute_into(hot, &x, 19, &mut workspace),
            Mode::Streaming => engine.execute_streaming_into(hot, &x, 19, &mut workspace),
        };
    }
    let steady_secs = steady_start.elapsed().as_secs_f64();
    let steady_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(
        steady_allocs, 0,
        "steady-state {mode_label} must not allocate"
    );

    // The allocating wrapper (the previous hot path) for comparison.
    for _ in 0..3 {
        let _ = engine.execute(hot, &x, 19);
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let alloc_start = Instant::now();
    for _ in 0..steady_iters {
        let _ = engine.execute(hot, &x, 19);
    }
    let alloc_secs = alloc_start.elapsed().as_secs_f64();
    let wrapper_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;

    println!("\nsteady-state execute ({steady_iters} requests on one hot matrix):");
    println!(
        "  {mode_label:<26} {:>8.0} ns/req   {} allocs/req",
        1e9 * steady_secs / steady_iters as f64,
        steady_allocs / steady_iters
    );
    println!(
        "  execute (allocating)       {:>8.0} ns/req   {} allocs/req",
        1e9 * alloc_secs / steady_iters as f64,
        wrapper_allocs / steady_iters
    );

    // ---- 3. Warm prepared vs streaming on the MP/ELL-heavy slice. --------
    // The slice pairs every corpus matrix with CSR,MP (whose streaming walk
    // re-runs one binary search per ~8-work-item segment) and the
    // low-padding matrices additionally with ELL,TM (whose prepared slab
    // replaces the per-row offset walk with the coalesced column-major
    // layout). These are the kernels whose preprocessing the warm path used
    // to re-pay per request.
    let slice: Vec<(&str, &seer_sparse::CsrMatrix, KernelId)> = collection
        .iter()
        .flat_map(|entry| {
            let mut pairs = vec![(entry.name.as_str(), &entry.matrix, KernelId::CsrMergePath)];
            if entry.matrix.profile().ell_padding_ratio < 0.25 {
                pairs.push((
                    entry.name.as_str(),
                    &entry.matrix,
                    KernelId::EllThreadMapped,
                ));
            }
            pairs
        })
        .collect();
    // A fresh engine so preparation counters start clean (the training
    // engine already prepared plans in section 2).
    let warm_engine = SeerEngine::new(engine.gpu_handle(), engine.models_handle());
    let slice_inputs: Vec<Vec<f64>> = slice
        .iter()
        .map(|(_, matrix, _)| (0..matrix.cols()).map(|i| 1.0 + (i % 7) as f64).collect())
        .collect();
    let max_rows = slice.iter().map(|(_, m, _)| m.rows()).max().unwrap_or(0);
    let mut y = vec![0.0; max_rows];
    let mut reference = vec![0.0; max_rows];
    let mut scratch = ComputeScratch::new();

    // Build every plan once (cold), verifying bit-identity along the way.
    for ((_, matrix, kernel_id), x) in slice.iter().zip(&slice_inputs) {
        let plan = warm_engine.prepared_plan(matrix, *kernel_id);
        let k = kernel(*kernel_id);
        k.compute_into(matrix, x, &mut reference[..matrix.rows()], &mut scratch);
        k.compute_prepared_into(&plan, matrix, x, &mut y[..matrix.rows()], &mut scratch);
        for (a, b) in y[..matrix.rows()].iter().zip(&reference[..matrix.rows()]) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "prepared path must be bit-identical"
            );
        }
    }
    let after_build = warm_engine.stats();
    assert_eq!(
        after_build.plan_preparations,
        slice.len() as u64,
        "exactly one preparation per (matrix, kernel) miss"
    );

    // Warm measurement: prepared (cache lookup + replay) vs streaming
    // (re-derivation), as two sequential rep loops over the same round-robin
    // pair order. Both start warm — the build/verify pass above already ran
    // every pair through both paths — and each loop cycles through all
    // pairs (a working set far beyond L2) between repeat visits, so
    // neither path inherits a same-matrix cache advantage from the other.
    let slice_reps: u64 = if options.smoke { 40 } else { 200 };
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let prepared_start = Instant::now();
    for _ in 0..slice_reps {
        for ((_, matrix, kernel_id), x) in slice.iter().zip(&slice_inputs) {
            let plan = warm_engine.prepared_plan(matrix, *kernel_id);
            kernel(*kernel_id).compute_prepared_into(
                &plan,
                matrix,
                x,
                &mut y[..matrix.rows()],
                &mut scratch,
            );
        }
    }
    let prepared_secs = prepared_start.elapsed().as_secs_f64();
    let prepared_allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    assert_eq!(prepared_allocs, 0, "warm prepared path must not allocate");
    assert_eq!(
        warm_engine.stats().plan_preparations,
        after_build.plan_preparations,
        "warm hits must prepare nothing"
    );

    let streaming_start = Instant::now();
    for _ in 0..slice_reps {
        for ((_, matrix, kernel_id), x) in slice.iter().zip(&slice_inputs) {
            kernel(*kernel_id).compute_into(matrix, x, &mut y[..matrix.rows()], &mut scratch);
        }
    }
    let streaming_secs = streaming_start.elapsed().as_secs_f64();

    let slice_requests = slice_reps * slice.len() as u64;
    let prepared_ns = 1e9 * prepared_secs / slice_requests as f64;
    let streaming_ns = 1e9 * streaming_secs / slice_requests as f64;
    let warm_speedup = streaming_secs / prepared_secs.max(1e-12);
    println!(
        "\nwarm prepared vs streaming ({} (matrix, kernel) pairs x {slice_reps} reps, \
         CSR,MP + low-padding ELL,TM):",
        slice.len()
    );
    println!("  prepared (plan replay)     {prepared_ns:>8.0} ns/req   {prepared_allocs} allocs");
    println!("  streaming (re-derive)      {streaming_ns:>8.0} ns/req");
    println!(
        "  speedup {warm_speedup:.2}x   preparations {} (1 per pair), resident {} KiB",
        after_build.plan_preparations,
        warm_engine.stats().resident_plan_bytes / 1024
    );
    assert!(
        warm_speedup >= 1.5,
        "prepared warm path must be >= 1.5x the streaming path, got {warm_speedup:.2}x"
    );

    // ---- 4. Family reuse: structure-class inheritance + value updates. ---
    // Two streams measure the amortization layers this PR adds to the cold
    // path. (a) `near_duplicate_families`: fresh matrices from already-served
    // structure classes inherit their `(kernel, device)` selection — the
    // modelled selection overhead per fresh matrix must drop >= 5x against
    // the reuse-free baseline (the PR-5 cold path). (b) `mutating_hot_set`:
    // value-only mutations replayed in place stay on the sparsity-keyed warm
    // path, against a content-keyed emulation that rebuilds the matrix (and
    // therefore goes cold) on every mutation.
    let family_members = if options.smoke { 4 } else { 10 };
    // Family generators are chosen so each draw has *fresh* sparsity (random
    // column placement — a deterministic-structure family like `banded` or
    // `stencil_2d` would short-circuit into the exact plan cache instead of
    // exercising inheritance) while staying inside one structure class
    // (fixed or tightly concentrated nnz, so no log2/CV bucket straddling).
    type FamilyShape = Box<dyn Fn(&mut seer_sparse::SplitMix64) -> seer_sparse::CsrMatrix>;
    let families: Vec<FamilyShape> = vec![
        Box::new(|rng| seer_sparse::generators::uniform_row_length(3_000, 8, rng)),
        Box::new(|rng| seer_sparse::generators::uniform_row_length(1_500, 24, rng)),
        Box::new(|rng| seer_sparse::generators::uniform_random(1_500, 1_500, 0.006, rng)),
        Box::new(|rng| seer_sparse::generators::uniform_random(3_000, 3_000, 0.003, rng)),
        Box::new(|rng| seer_sparse::generators::tall_skinny(3_000, 500, 6, rng)),
        Box::new(|rng| seer_sparse::generators::tall_skinny(6_000, 800, 4, rng)),
    ];
    // One warm seed member plus `family_members` fresh members per family,
    // generated twice (identical streams) so the baseline and reuse sweeps
    // each see matrices with cold memos.
    let generate_families = || -> (Vec<seer_sparse::CsrMatrix>, Vec<seer_sparse::CsrMatrix>) {
        let mut rng = seer_sparse::SplitMix64::new(0xFA417);
        let mut seeds = Vec::new();
        let mut fresh = Vec::new();
        for family in &families {
            seeds.push(family(&mut rng));
            for _ in 0..family_members {
                fresh.push(family(&mut rng));
            }
        }
        (seeds, fresh)
    };

    let fleet = Fleet::reference_heterogeneous();
    // Baseline: reuse off — every fresh matrix pays the full cold selection
    // (profile pass + per-device cost ranking + tree walks).
    let (base_seeds, base_fresh) = generate_families();
    let baseline_engine = SeerEngine::with_fleet(fleet.clone(), engine.models_handle());
    for seed in &base_seeds {
        let _ = baseline_engine.select(seed, 19);
    }
    let baseline_start = Instant::now();
    let mut baseline_overhead_ns = 0.0f64;
    for matrix in &base_fresh {
        baseline_overhead_ns += baseline_engine.select(matrix, 19).overhead().as_nanos();
    }
    let baseline_wall_secs = baseline_start.elapsed().as_secs_f64();

    // Reuse: class inheritance on — the seed members decide from scratch,
    // and the fresh members adopt their class's selection.
    let (reuse_seeds, reuse_fresh) = generate_families();
    let reuse_engine = SeerEngine::with_fleet(fleet.clone(), engine.models_handle());
    reuse_engine.set_structure_class_reuse(true);
    for seed in &reuse_seeds {
        let _ = reuse_engine.select(seed, 19);
    }
    let before_fresh = reuse_engine.stats();
    let reuse_start = Instant::now();
    let mut reuse_overhead_ns = 0.0f64;
    for matrix in &reuse_fresh {
        reuse_overhead_ns += reuse_engine.select(matrix, 19).overhead().as_nanos();
    }
    let reuse_wall_secs = reuse_start.elapsed().as_secs_f64();
    let inherited = reuse_engine.stats().inherited_selections - before_fresh.inherited_selections;
    let hit_rate = inherited as f64 / reuse_fresh.len() as f64;
    let fresh_count = base_fresh.len() as f64;
    let cold_reduction = baseline_overhead_ns / reuse_overhead_ns.max(1e-9);

    println!(
        "\nfamily reuse ({} families x {family_members} fresh members, 4-device fleet):",
        families.len()
    );
    println!(
        "  inheritance hit rate       {inherited}/{} ({:.0}%)",
        reuse_fresh.len(),
        100.0 * hit_rate
    );
    println!(
        "  modelled overhead/fresh    baseline {:.0} ns   inherited {:.0} ns   ({cold_reduction:.1}x)",
        baseline_overhead_ns / fresh_count,
        reuse_overhead_ns / fresh_count
    );
    println!(
        "  wall select/fresh          baseline {:.1} us   inherited {:.1} us",
        1e6 * baseline_wall_secs / fresh_count,
        1e6 * reuse_wall_secs / fresh_count
    );
    assert!(
        hit_rate >= 0.8,
        "family stream must mostly inherit, hit rate {hit_rate:.2}"
    );
    assert!(
        cold_reduction >= 5.0,
        "inherited cold path must cut modelled selection overhead >= 5x \
         vs the reuse-free baseline, got {cold_reduction:.1}x"
    );

    // (b) The mutating hot set: value-only updates served in place. Both
    // lanes warm the whole corpus first (at both iteration modes the stream
    // draws), so the measured window isolates what a value update costs on
    // an already-warm engine.
    let mutating_requests = if options.smoke { 1_000 } else { 5_000 };
    let traffic = seer_sparse::traffic::TrafficConfig::mutating_hot_set(collection.len(), 0x517);
    let stream: Vec<seer_sparse::traffic::TrafficRequest> =
        seer_sparse::traffic::TrafficGenerator::new(&traffic)
            .take(mutating_requests)
            .collect();
    let value_updates = stream.iter().filter(|r| r.value_update).count();

    // Sparsity-keyed engine (this PR): mutate in place, stay warm.
    let mut warm_corpus: Vec<seer_sparse::CsrMatrix> =
        collection.iter().map(|e| e.matrix.clone()).collect();
    let sparsity_engine = SeerEngine::new(engine.gpu_handle(), engine.models_handle());
    let mut mutating_ws = EngineWorkspace::new();
    let max_cols = warm_corpus.iter().map(|m| m.cols()).max().unwrap_or(0);
    let xs = vec![1.0; max_cols];
    for matrix in &warm_corpus {
        for iterations in [1, 19] {
            let _ = sparsity_engine.execute_into(
                matrix,
                &xs[..matrix.cols()],
                iterations,
                &mut mutating_ws,
            );
        }
    }
    let warm = sparsity_engine.stats();
    let sparsity_start = Instant::now();
    for request in &stream {
        let matrix = &mut warm_corpus[request.matrix_index];
        if request.value_update {
            matrix.map_values(|_, _, v| v * 1.000_1 + 0.01);
        }
        let _ = sparsity_engine.execute_into(
            matrix,
            &xs[..matrix.cols()],
            request.iterations,
            &mut mutating_ws,
        );
    }
    let sparsity_secs = sparsity_start.elapsed().as_secs_f64();
    let sparsity_stats = sparsity_engine.stats();
    assert_eq!(
        sparsity_stats.profile_passes, warm.profile_passes,
        "in-place value updates must never re-profile"
    );
    assert_eq!(
        sparsity_stats.feature_collections, warm.feature_collections,
        "in-place value updates must never re-collect features"
    );
    assert_eq!(
        sparsity_stats.plan_misses, warm.plan_misses,
        "in-place value updates must never miss the plan cache"
    );
    assert_eq!(
        sparsity_stats.plan_preparations, warm.plan_preparations,
        "in-place value updates must never rebuild a plan from scratch"
    );
    let slab_refreshes = sparsity_stats.plan_value_refreshes - warm.plan_value_refreshes;

    // Content-keyed emulation (the PR-5 behaviour): under content keying a
    // value update changed the matrix's fingerprint, so every cached
    // artifact for it was orphaned and the next request paid a full cold
    // contact; replays *between* mutations stayed warm. Emulated with a
    // warm engine for replays plus a dedicated probe engine whose caches
    // are dropped before each post-mutation execute (`clear_caches` also
    // resets stats, so cold work is accumulated per contact).
    let mut content_corpus: Vec<seer_sparse::CsrMatrix> =
        collection.iter().map(|e| e.matrix.clone()).collect();
    let content_engine = SeerEngine::new(engine.gpu_handle(), engine.models_handle());
    let cold_probe = SeerEngine::new(engine.gpu_handle(), engine.models_handle());
    for matrix in &content_corpus {
        for iterations in [1, 19] {
            let _ = content_engine.execute_into(
                matrix,
                &xs[..matrix.cols()],
                iterations,
                &mut mutating_ws,
            );
        }
    }
    let mut cold_contacts = EngineStats::default();
    let content_start = Instant::now();
    for request in &stream {
        let matrix = &mut content_corpus[request.matrix_index];
        if request.value_update {
            matrix.map_values(|_, _, v| v * 1.000_1 + 0.01);
            cold_probe.clear_caches();
            let _ = cold_probe.execute_into(
                matrix,
                &xs[..matrix.cols()],
                request.iterations,
                &mut mutating_ws,
            );
            cold_contacts = cold_contacts.saturating_add(cold_probe.stats());
        } else {
            let _ = content_engine.execute_into(
                matrix,
                &xs[..matrix.cols()],
                request.iterations,
                &mut mutating_ws,
            );
        }
    }
    let content_secs = content_start.elapsed().as_secs_f64();

    let mutating_speedup = content_secs / sparsity_secs.max(1e-12);
    println!(
        "\nmutating hot set ({mutating_requests} requests, {value_updates} value updates, warm corpus):"
    );
    println!(
        "  sparsity-keyed (in-place)  {:.1} us/req   0 plan misses, {slab_refreshes} slab refreshes",
        1e6 * sparsity_secs / mutating_requests as f64,
    );
    println!(
        "  content-keyed (re-keyed)   {:.1} us/req   {} plan misses, {} preparations   ({mutating_speedup:.1}x)",
        1e6 * content_secs / mutating_requests as f64,
        cold_contacts.plan_misses,
        cold_contacts.plan_preparations
    );
    assert!(
        cold_contacts.plan_misses >= value_updates as u64,
        "the content-keyed emulation must go cold on every mutation"
    );

    // ---- 5. Online recalibration: migrate off a drifting device & back. --
    // One device of a two-device fleet silently becomes 8x slower than its
    // analytical model claims (injected through the fleet's true-timing
    // perturbation table). With recalibration on, the per-(device, kernel)
    // EWMA correction must pull placement off that device within a bounded
    // number of observed executions, and — once the drift lifts —
    // epsilon-greedy exploration must re-observe the recovered device and
    // migrate placement back. Both bounds are asserted. The fleet pairs the
    // flagship with a half-bandwidth clone so the discredited device is
    // always the runner-up exploration revisits.
    let recal_fleet = {
        let mut registry = DeviceRegistry::new();
        let flagship = GpuSpec::mi100();
        let mut detuned = GpuSpec::mi100();
        detuned.name = "MI100 (half bandwidth)".to_string();
        detuned.memory_bandwidth_gbps /= 2.0;
        registry.register(flagship).expect("valid flagship spec");
        registry.register(detuned).expect("valid de-tuned spec");
        Fleet::from_registry(registry).expect("two-device fleet")
    };
    let recal_engine = SeerEngine::with_fleet(recal_fleet.clone(), engine.models_handle());
    recal_engine.set_recalibration(Some(RecalibrationConfig {
        smoothing: 0.5,
        clamp_max: 16.0,
        exploration: Some(ExplorationPolicy {
            near_tie_fraction: f64::INFINITY,
            epsilon: 0.5,
            seed: 0x5EED,
        }),
        ..RecalibrationConfig::default()
    }));
    let mut recal_rng = seer_sparse::SplitMix64::new(0xBEEF);
    let drift_matrix = seer_sparse::generators::uniform_random(2_500, 2_500, 0.05, &mut recal_rng);
    let drift_x = vec![1.0; drift_matrix.cols()];
    let mut recal_ws = EngineWorkspace::new();
    let home = recal_engine
        .execute_into(&drift_matrix, &drift_x, 19, &mut recal_ws)
        .0
        .device;

    const MIGRATE_OFF_BOUND: u64 = 25;
    recal_fleet.set_true_timing_factor(home, 8.0);
    let mut migrated_off_after = None;
    for observation in 1..=MIGRATE_OFF_BOUND {
        let explored_before = recal_engine.stats().explored_selections;
        let (selection, _) = recal_engine.execute_into(&drift_matrix, &drift_x, 19, &mut recal_ws);
        let explored = recal_engine.stats().explored_selections != explored_before;
        if !explored && selection.device != home {
            migrated_off_after = Some(observation);
            break;
        }
    }
    let migrated_off_after = migrated_off_after.unwrap_or_else(|| {
        panic!("placement must migrate off the drifting device within {MIGRATE_OFF_BOUND} observations")
    });
    let drift_kernel = recal_engine.select(&drift_matrix, 19).kernel;
    let drifted_factor = recal_engine.correction_factor(home, drift_kernel);
    let drift_millilog = recal_engine.stats().correction_drift_millilog;

    const MIGRATE_BACK_BOUND: u64 = 400;
    recal_fleet.clear_true_timing_factors();
    let mut migrated_back_after = None;
    for observation in 1..=MIGRATE_BACK_BOUND {
        let explored_before = recal_engine.stats().explored_selections;
        let (selection, _) = recal_engine.execute_into(&drift_matrix, &drift_x, 19, &mut recal_ws);
        let explored = recal_engine.stats().explored_selections != explored_before;
        if !explored && selection.device == home {
            migrated_back_after = Some(observation);
            break;
        }
    }
    let migrated_back_after = migrated_back_after.unwrap_or_else(|| {
        panic!("exploration must migrate placement back within {MIGRATE_BACK_BOUND} observations after the drift lifts")
    });
    let recal_stats = recal_engine.stats();

    println!("\nonline recalibration (8x injected slowdown on {home}, two-device fleet):");
    println!(
        "  migrated off after         {migrated_off_after} observations (bound {MIGRATE_OFF_BOUND}), \
         correction factor {drifted_factor:.2}"
    );
    println!(
        "  migrated back after        {migrated_back_after} observations (bound {MIGRATE_BACK_BOUND}) \
         once the drift lifted"
    );
    println!(
        "  observations {}   corrections {}   explored {}   peak drift {} millilog",
        recal_stats.timing_observations,
        recal_stats.corrections_applied,
        recal_stats.explored_selections,
        drift_millilog
    );
    assert!(
        drifted_factor > 2.0,
        "the EWMA must converge toward the injected slowdown, got {drifted_factor:.2}"
    );

    // ---- 6. Optional golden-selection agreement check. -------------------
    let mut golden_checked = false;
    if options.check {
        let golden = locate_golden_table().expect(
            "tests/golden_selections.txt not found; run from the workspace root \
             or regenerate it with SEER_BLESS_GOLDEN=1 cargo test --test selection_golden",
        );
        let golden_rows: Vec<&str> = golden.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(
            golden_rows.len(),
            collection.len(),
            "golden table size does not match the corpus"
        );
        for (entry, row) in collection.iter().zip(&golden_rows) {
            let fields: Vec<&str> = row.split_whitespace().collect();
            let single = engine.select(&entry.matrix, 1);
            let solver = engine.select(&entry.matrix, 19);
            assert_eq!(fields[0], entry.name, "golden row order drifted");
            assert_eq!(
                fields[2],
                single.kernel.label(),
                "{}: kernel@1 drifted from the golden table",
                entry.name
            );
            assert_eq!(
                fields[3],
                solver.kernel.label(),
                "{}: kernel@19 drifted from the golden table",
                entry.name
            );
        }
        golden_checked = true;
        println!(
            "\ngolden check: OK ({} selections agree with tests/golden_selections.txt)",
            2 * golden_rows.len()
        );
    }

    // ---- 6. Emit the JSON trajectory point. ------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"profile_selection\",");
    let _ = writeln!(json, "  \"corpus_matrices\": {},", collection.len());
    let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        match options.mode {
            Mode::Prepared => "prepared",
            Mode::Streaming => "streaming",
        }
    );
    let _ = writeln!(json, "  \"cold_selection\": {{");
    let _ = writeln!(
        json,
        "    \"profiling_passes_per_matrix_before\": {LEGACY_SWEEPS_PER_SELECTION},"
    );
    let _ = writeln!(
        json,
        "    \"profiling_passes_per_matrix_after\": {},",
        cold_passes / fresh.len() as u64
    );
    let _ = writeln!(
        json,
        "    \"profiling_us_per_matrix_before\": {:.3},",
        1e6 * legacy_profiling_secs / legacy.len() as f64
    );
    let _ = writeln!(
        json,
        "    \"profiling_us_per_matrix_after\": {:.3},",
        1e6 * fused_profiling_secs / fused.len() as f64
    );
    let _ = writeln!(
        json,
        "    \"cold_execute_us_per_matrix\": {:.3},",
        1e6 * cold_execute_secs / fresh.len() as f64
    );
    let _ = writeln!(
        json,
        "    \"cold_benchmark_us_per_matrix\": {:.3}",
        1e6 * cold_benchmark_secs / fresh_bench.len() as f64
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"fleet_cold_selection\": {{");
    let _ = writeln!(json, "    \"devices\": {},", fleet.len());
    let _ = writeln!(
        json,
        "    \"profiling_passes_per_matrix\": {},",
        fleet_passes / fleet_fresh.len() as u64
    );
    let _ = writeln!(
        json,
        "    \"cold_select_us_per_matrix\": {:.3}",
        1e6 * fleet_cold_secs / fleet_fresh.len() as f64
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"steady_state_execute\": {{");
    let _ = writeln!(json, "    \"requests\": {steady_iters},");
    let _ = writeln!(
        json,
        "    \"allocs_per_request_workspace\": {},",
        steady_allocs / steady_iters
    );
    let _ = writeln!(
        json,
        "    \"allocs_per_request_allocating\": {},",
        wrapper_allocs / steady_iters
    );
    let _ = writeln!(
        json,
        "    \"ns_per_request_workspace\": {:.0},",
        1e9 * steady_secs / steady_iters as f64
    );
    let _ = writeln!(
        json,
        "    \"ns_per_request_allocating\": {:.0}",
        1e9 * alloc_secs / steady_iters as f64
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"warm_prepared\": {{");
    let _ = writeln!(json, "    \"slice_pairs\": {},", slice.len());
    let _ = writeln!(json, "    \"requests_per_path\": {slice_requests},");
    let _ = writeln!(json, "    \"ns_per_request_prepared\": {prepared_ns:.0},");
    let _ = writeln!(json, "    \"ns_per_request_streaming\": {streaming_ns:.0},");
    let _ = writeln!(json, "    \"speedup\": {warm_speedup:.2},");
    let _ = writeln!(
        json,
        "    \"allocs_per_request_prepared\": {},",
        prepared_allocs / slice_requests.max(1)
    );
    let _ = writeln!(
        json,
        "    \"preparations\": {},",
        after_build.plan_preparations
    );
    let _ = writeln!(
        json,
        "    \"resident_plan_bytes\": {}",
        warm_engine.stats().resident_plan_bytes
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"family_reuse\": {{");
    let _ = writeln!(json, "    \"families\": {},", families.len());
    let _ = writeln!(json, "    \"fresh_members\": {},", base_fresh.len());
    let _ = writeln!(json, "    \"inheritance_hit_rate\": {hit_rate:.3},");
    let _ = writeln!(
        json,
        "    \"modelled_overhead_ns_per_fresh_baseline\": {:.0},",
        baseline_overhead_ns / fresh_count
    );
    let _ = writeln!(
        json,
        "    \"modelled_overhead_ns_per_fresh_inherited\": {:.0},",
        reuse_overhead_ns / fresh_count
    );
    let _ = writeln!(
        json,
        "    \"cold_selection_cost_reduction\": {cold_reduction:.1},"
    );
    let _ = writeln!(
        json,
        "    \"wall_us_per_fresh_baseline\": {:.1},",
        1e6 * baseline_wall_secs / fresh_count
    );
    let _ = writeln!(
        json,
        "    \"wall_us_per_fresh_inherited\": {:.1},",
        1e6 * reuse_wall_secs / fresh_count
    );
    let _ = writeln!(json, "    \"mutating_stream\": {{");
    let _ = writeln!(json, "      \"requests\": {mutating_requests},");
    let _ = writeln!(json, "      \"value_updates\": {value_updates},");
    let _ = writeln!(
        json,
        "      \"us_per_request_sparsity_keyed\": {:.1},",
        1e6 * sparsity_secs / mutating_requests as f64
    );
    let _ = writeln!(
        json,
        "      \"us_per_request_content_keyed\": {:.1},",
        1e6 * content_secs / mutating_requests as f64
    );
    let _ = writeln!(json, "      \"speedup\": {mutating_speedup:.1},");
    let _ = writeln!(
        json,
        "      \"plan_misses_sparsity_keyed\": {},",
        sparsity_stats.plan_misses - warm.plan_misses
    );
    let _ = writeln!(
        json,
        "      \"plan_misses_content_keyed\": {},",
        cold_contacts.plan_misses
    );
    let _ = writeln!(json, "      \"slab_refreshes\": {slab_refreshes}");
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"recalibration\": {{");
    let _ = writeln!(json, "    \"injected_slowdown\": 8.0,");
    let _ = writeln!(json, "    \"migrated_off_after\": {migrated_off_after},");
    let _ = writeln!(json, "    \"migrate_off_bound\": {MIGRATE_OFF_BOUND},");
    let _ = writeln!(json, "    \"migrated_back_after\": {migrated_back_after},");
    let _ = writeln!(json, "    \"migrate_back_bound\": {MIGRATE_BACK_BOUND},");
    let _ = writeln!(
        json,
        "    \"correction_factor_at_migration\": {drifted_factor:.2},"
    );
    let _ = writeln!(json, "    \"peak_drift_millilog\": {drift_millilog},");
    let _ = writeln!(
        json,
        "    \"timing_observations\": {},",
        recal_stats.timing_observations
    );
    let _ = writeln!(
        json,
        "    \"corrections_applied\": {},",
        recal_stats.corrections_applied
    );
    let _ = writeln!(
        json,
        "    \"explored_selections\": {}",
        recal_stats.explored_selections
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"golden_checked\": {golden_checked}");
    json.push_str("}\n");
    std::fs::write(&options.out, &json).expect("writing the bench report");
    println!("\nwrote {}", options.out);
}
