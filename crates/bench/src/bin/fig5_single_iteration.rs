//! Figure 5: single-iteration runtime of the Oracle, the classifier-selection
//! predictor, the gathered- and known-feature predictors, and every fixed
//! kernel — for the named stand-in matrices (5a-c) and aggregated over the
//! test set (5d), including the 2x / geomean headline numbers.

use seer_bench::{evaluation_engine, fmt_ms, paper_standins};
use seer_core::benchmarking::BenchmarkRecord;
use seer_core::evaluation::evaluate;
use seer_kernels::KernelId;

fn main() {
    eprintln!("fig5: training on the evaluation collection...");
    let (engine, outcome) = evaluation_engine().expect("training succeeds");

    // Panels (a)-(c): named stand-ins, single iteration.
    println!("Fig. 5a-c analogues: single-iteration totals on the named stand-ins (ms)\n");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} per-kernel (CSR,A CSR,BM CSR,MP CSR,WM CSR,WO CSR,TM COO,WM ELL,TM)",
        "matrix", "Oracle", "Selector", "Gathered", "Known"
    );
    for entry in paper_standins() {
        let record = BenchmarkRecord::measure(engine.gpu(), &entry.name, &entry.matrix, 1);
        let report = evaluate(&engine, std::slice::from_ref(&record));
        let totals = &report.totals;
        let per_kernel: Vec<String> = totals.per_kernel.iter().map(|(_, t)| fmt_ms(*t)).collect();
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>9}   {}",
            entry.name,
            fmt_ms(totals.oracle),
            fmt_ms(totals.selector),
            fmt_ms(totals.gathered),
            fmt_ms(totals.known),
            per_kernel.join(" ")
        );
    }

    // Panel (d): aggregate over the held-out test records.
    let report = evaluate(&engine, &outcome.test_records);
    println!(
        "\nFig. 5d analogue: aggregate totals over the {} held-out records (ms)\n",
        report.records.len()
    );
    println!("  {:<22} {:>12}", "Oracle", fmt_ms(report.totals.oracle));
    println!(
        "  {:<22} {:>12}",
        "Selector",
        fmt_ms(report.totals.selector)
    );
    println!(
        "  {:<22} {:>12}",
        "Gathered",
        fmt_ms(report.totals.gathered)
    );
    println!("  {:<22} {:>12}", "Known", fmt_ms(report.totals.known));
    for (kernel, total) in &report.totals.per_kernel {
        println!("  {:<22} {:>12}", kernel.label(), fmt_ms(*total));
    }

    let (best_kernel, best_total) = report.totals.best_single_kernel();
    println!("\nheadline numbers:");
    println!(
        "  selector vs best fixed kernel ({}): {:.2}x aggregate, {:.2}x geomean",
        best_kernel.label(),
        best_total / report.totals.selector,
        report.geomean_speedup_over_best_kernel()
    );
    println!(
        "  geomean speed-up over all fixed kernels: {:.2}x",
        report.geomean_speedup_over_all_kernels()
    );
    println!(
        "  selector within {:.2}x of the Oracle; feature collection used on {:.0}% of inputs",
        report.totals.selector / report.totals.oracle,
        report.gather_rate * 100.0
    );
    println!(
        "  prediction accuracies on this set: known {:.0}%, gathered {:.0}%, selector-vs-oracle {:.0}%",
        report.known_accuracy * 100.0,
        report.gathered_accuracy * 100.0,
        report.selector_accuracy * 100.0
    );
    println!("\nper-kernel geomean speed-up of the selector:");
    for (kernel, speedup) in &report.geomean_speedup_per_kernel {
        println!("  vs {:<8} {:>8.2}x", kernel.label(), speedup);
    }
    let _ = KernelId::ALL;
}
