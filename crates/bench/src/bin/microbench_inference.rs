//! Plain-`std` microbenchmark of the runtime-selection hot paths: cold
//! selection, cached replay, batched replay and the exhaustive Oracle.
//!
//! The Criterion benches under `benches/` cannot be compiled in this
//! environment (no registry access), so this binary keeps the inference-path
//! numbers reproducible — and the engine API usage compile-checked — with
//! nothing beyond `std::time`. Timings are wall-clock on the host; they back
//! the paper's claim that decision-tree inference overhead is negligible
//! next to kernel runtime.

use std::time::Instant;

use seer_core::engine::SeerEngine;
use seer_core::training::TrainingConfig;
use seer_gpu::Gpu;
use seer_kernels::Oracle;
use seer_sparse::collection::{generate, CollectionConfig};
use seer_sparse::{generators, CsrMatrix, SplitMix64};

/// Rebuilds the matrix from its raw parts so the copy starts with an empty
/// fingerprint cache — `clone()` would carry the memoized fingerprint along
/// and make a "first contact" measurement quietly warm.
fn without_fingerprint(matrix: &CsrMatrix) -> CsrMatrix {
    CsrMatrix::try_new(
        matrix.rows(),
        matrix.cols(),
        matrix.row_offsets().to_vec(),
        matrix.col_indices().to_vec(),
        matrix.values().to_vec(),
    )
    .expect("source matrix is valid")
}

fn time_per_call<F: FnMut()>(iterations: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iterations)
}

/// Times `f` per call with `setup` run before each call *outside* the timed
/// region, so cache-reset cost never pollutes the reported number.
fn time_per_call_with_setup<S: FnMut(), F: FnMut()>(
    iterations: u32,
    mut setup: S,
    mut f: F,
) -> f64 {
    let mut total = 0u128;
    for _ in 0..iterations {
        setup();
        let start = Instant::now();
        f();
        total += start.elapsed().as_nanos();
    }
    total as f64 / f64::from(iterations)
}

fn main() {
    let entries = generate(&CollectionConfig::tiny());
    let (engine, _outcome) = SeerEngine::train(Gpu::default(), &entries, &TrainingConfig::fast())
        .expect("training succeeds");
    let oracle = Oracle::new(engine.gpu());

    let mut rng = SplitMix64::new(71);
    let matrices = vec![
        ("banded_20k", generators::banded(20_000, 3, &mut rng)),
        (
            "powerlaw_20k",
            generators::power_law(20_000, 1.9, 2_000, &mut rng),
        ),
    ];

    println!(
        "{:<14} {:>18} {:>16} {:>16} {:>16} {:>14}",
        "matrix",
        "first contact (ns)",
        "cold select (ns)",
        "cached hit (ns)",
        "batch/plan (ns)",
        "oracle (ns)"
    );
    for (name, matrix) in &matrices {
        // First contact: empty fingerprint cache AND empty plan cache, i.e.
        // what a request on a never-seen matrix actually pays. The cache
        // reset happens outside the timed region.
        let fresh: Vec<CsrMatrix> = (0..50).map(|_| without_fingerprint(matrix)).collect();
        let mut next = fresh.iter();
        let first_contact = time_per_call_with_setup(
            fresh.len() as u32,
            || engine.clear_caches(),
            || {
                let _ = engine.select(next.next().expect("one matrix per iteration"), 1);
            },
        );

        // Cold select: plan cache cleared (outside the timer) but the matrix
        // fingerprint already memoized — repeated traffic after an
        // engine-side cache flush.
        let cold = time_per_call_with_setup(
            100,
            || engine.clear_caches(),
            || {
                let _ = engine.select(matrix, 1);
            },
        );
        engine.select(matrix, 1);
        let cached = time_per_call(100_000, || {
            let _ = engine.select(matrix, 1);
        });
        let requests = [(matrix as &CsrMatrix, 1usize); 64];
        let batch = time_per_call(1_000, || {
            let _ = engine.select_batch(&requests);
        }) / 64.0;
        let oracle_time = time_per_call(100, || {
            let _ = oracle.best_kernel(matrix, 1);
        });
        println!(
            "{name:<14} {first_contact:>18.0} {cold:>16.0} {cached:>16.0} {batch:>16.0} {oracle_time:>14.0}"
        );
    }

    let stats = engine.stats();
    println!(
        "\ncounters: {} hits / {} misses / {} feature collections / {} fallbacks",
        stats.plan_hits,
        stats.plan_misses,
        stats.feature_collections,
        stats.misprediction_fallbacks
    );
}
