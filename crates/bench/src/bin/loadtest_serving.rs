//! Load test of the sharded [`ServingPool`] against a sequential
//! [`SeerEngine`] on the same deterministic traffic stream — in both the
//! classic single-device configuration and a heterogeneous device fleet.
//!
//! The stream comes from [`seer_sparse::traffic`] (Zipf-like hot set, bursts,
//! bimodal iteration counts; the fleet scenario widens the iteration mix so
//! placement varies), so every run — and every future regression check —
//! replays the exact same requests. Both sides execute the full
//! select-and-run pipeline: plan lookup/computation plus a functional SpMV of
//! the chosen kernel, which is the CPU-bound work that gives the pool
//! something real to parallelize.
//!
//! ```text
//! cargo run -p seer_bench --release --bin loadtest_serving            # full run
//! cargo run -p seer_bench --release --bin loadtest_serving -- --smoke # CI smoke
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --shards 8 --requests 20000                                     # custom
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --fleet 3 --smoke --out BENCH_loadtest_fleet3.json              # fleet CI
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --families --smoke --out BENCH_loadtest_families.json           # family CI
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --chaos --smoke --out BENCH_loadtest_chaos.json                 # chaos CI
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --overload --smoke --out BENCH_loadtest_overload.json           # overload CI
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --burst --smoke --out BENCH_loadtest_burst.json                 # burst CI
//! ```
//!
//! `--fleet N` builds an `N`-device heterogeneous fleet (MI250-class, MI100,
//! consumer, APU presets in that order), augments the corpus with
//! bandwidth-bound and skew-heavy slices that win on different devices,
//! routes through the device-aware pool (`--shards` then counts per device),
//! and reports per-device lanes. `--out PATH` writes a JSON summary.
//!
//! `--families` replaces the corpus with near-duplicate structure families
//! under cache-hostile uniform traffic and serves the pooled side with
//! structure-class inheritance on ([`PoolConfig::with_class_reuse`]); the
//! sequential side stays from-scratch, so the differential grades how well
//! inherited selections track the exact cold path.
//!
//! The binary always verifies that the pooled responses are bit-identical to
//! the sequential replay (selections and result vectors) before printing
//! throughput, and exits non-zero on any mismatch. In the family lane the
//! check is graded instead: bit-identical whenever pooled and sequential
//! agree on the kernel, solver tolerance when inheritance diverged. The pooled-vs-sequential
//! speedup is reported but only *asserted* (>= 2x, the PR acceptance bar)
//! when the machine actually has >= 4 CPUs available and `--assert-speedup`
//! is passed, because a 4-shard pool cannot beat a single thread on a
//! single-core box no matter how good the code is.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use seer_core::engine::SeerEngine;
use seer_core::serving::{
    AdmissionConfig, PoolConfig, Priority, RoutingConfig, ServingError, ServingPool,
    ServingRequest, ShedPolicy, SubmitOutcome, Ticket,
};
use seer_core::training::TrainingConfig;
use seer_gpu::{Fleet, Gpu};
use seer_sparse::collection::{generate, CollectionConfig, SizeScale};
use seer_sparse::traffic::{
    ChaosEvent, RequestClass, TrafficConfig, TrafficGenerator, TrafficRequest,
};
use seer_sparse::{generators, CsrMatrix, Scalar, SplitMix64};

struct Options {
    smoke: bool,
    shards: usize,
    requests: usize,
    assert_speedup: bool,
    /// Number of heterogeneous fleet devices; 0 = classic single device.
    fleet: usize,
    /// Near-duplicate-family lane: cache-hostile traffic over structure
    /// families, served with structure-class inheritance enabled.
    families: bool,
    /// Chaos lane: a device is hard-failed mid-stream on the
    /// `device_death_mid_stream` traffic scenario; asserts every ticket
    /// resolves, zero wrong results, exact retry/migration counters, and
    /// post-death throughput within 2x of a fleet that never had the device.
    chaos: bool,
    /// Overload lane: calibrate the pool's capacity admission-free, then
    /// offer the `sustained_overload` scenario at ~4x that rate through an
    /// admission-controlled pool; asserts zero unresolved tickets, exact
    /// served/shed/expired/failed balance, bit-identical executed results,
    /// a bounded interactive-class p99 and shedding that lands on the lower
    /// classes.
    overload: bool,
    /// Burst lane: the `identical_burst` and `routing_storm` scenarios
    /// through a routed, micro-batching pool; asserts bit-identical results
    /// against a sequential oracle, `batch_activations <= batched_requests/2`
    /// on the identical-burst stream, a bounded submitter-thread p99 submit
    /// latency independent of cold-vs-warm matrices, zero unresolved tickets
    /// and an exact front-door balance.
    burst: bool,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut options = Options {
        smoke: false,
        shards: 4,
        requests: 8_000,
        assert_speedup: false,
        fleet: 0,
        families: false,
        chaos: false,
        overload: false,
        burst: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--assert-speedup" => options.assert_speedup = true,
            "--families" => options.families = true,
            "--chaos" => options.chaos = true,
            "--overload" => options.overload = true,
            "--burst" => options.burst = true,
            "--shards" => {
                options.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards takes a positive integer");
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests takes a positive integer");
            }
            "--fleet" => {
                options.fleet = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fleet takes a device count (2..=4)");
            }
            "--out" => {
                options.out = Some(args.next().expect("--out takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: loadtest_serving [--smoke] [--shards N] [--requests N] \
                     [--assert-speedup] [--fleet N] [--families] [--chaos] [--overload] \
                     [--burst] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if options.families && options.fleet > 0 {
        eprintln!("--families and --fleet are mutually exclusive lanes");
        std::process::exit(2);
    }
    if options.chaos && options.families {
        eprintln!("--chaos and --families are mutually exclusive lanes");
        std::process::exit(2);
    }
    if options.overload && (options.chaos || options.families || options.fleet > 0) {
        eprintln!("--overload is its own lane (no --chaos/--families/--fleet)");
        std::process::exit(2);
    }
    if options.burst && (options.chaos || options.families || options.overload || options.fleet > 0)
    {
        eprintln!("--burst is its own lane (no --chaos/--families/--overload/--fleet)");
        std::process::exit(2);
    }
    if options.chaos && !(options.fleet == 0 || (3..=4).contains(&options.fleet)) {
        eprintln!("--chaos needs a fleet of 3..=4 devices (default 3)");
        std::process::exit(2);
    }
    if options.smoke {
        options.requests = options.requests.min(1_000);
    }
    options
}

/// One generator shape of the near-duplicate-family corpus.
type FamilyShape = Box<dyn Fn(&mut SplitMix64) -> CsrMatrix>;

/// The near-duplicate-family corpus: every member is a *fresh* sparsity
/// pattern (random column placement — exact caches never hit across
/// members) drawn from one of six generator shapes whose quantized
/// structure signatures are stable, so each shape forms one structure
/// class the engine can inherit selections within.
fn family_corpus(members: usize) -> Vec<Arc<CsrMatrix>> {
    let shapes: Vec<FamilyShape> = vec![
        Box::new(|rng| generators::uniform_row_length(3_000, 8, rng)),
        Box::new(|rng| generators::uniform_row_length(1_500, 24, rng)),
        Box::new(|rng| generators::uniform_random(1_500, 1_500, 0.006, rng)),
        Box::new(|rng| generators::uniform_random(3_000, 3_000, 0.003, rng)),
        Box::new(|rng| generators::tall_skinny(3_000, 500, 6, rng)),
        Box::new(|rng| generators::tall_skinny(6_000, 800, 4, rng)),
    ];
    let mut rng = SplitMix64::new(0xFA417);
    let mut corpus = Vec::with_capacity(shapes.len() * members);
    for shape in &shapes {
        for _ in 0..members {
            corpus.push(Arc::new(shape(&mut rng)));
        }
    }
    corpus
}

/// The first `devices` presets of the reference heterogeneous lineup.
fn build_fleet(devices: usize) -> Fleet {
    let presets = Fleet::reference_presets();
    assert!(
        (2..=presets.len()).contains(&devices),
        "--fleet takes 2..={} devices",
        presets.len()
    );
    Fleet::of_specs(presets.into_iter().take(devices)).expect("presets validate")
}

/// The chaos lane: serve the `device_death_mid_stream` scenario over a
/// heterogeneous fleet, hard-fail one device while its backlog is in flight,
/// and prove the pool absorbs it — every ticket resolves, every result
/// matches a sequential single-device reference (bit-identical when the
/// kernels agree, solver tolerance otherwise), the failure/retry/migration
/// counters are exactly consistent, and post-death throughput stays within
/// 2x of a warm pool over a fleet that never had the device.
fn run_chaos(options: &Options) {
    let devices = if options.fleet == 0 { 3 } else { options.fleet };
    let fleet = build_fleet(devices);
    // The victim is the last (smallest) device in the lineup, never the
    // default; the never-had-it reference fleet is simply one device shorter.
    let victim = seer_gpu::DeviceId::new(devices as u16 - 1);

    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (trained, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the chaos loadtest models");
    let mut corpus: Vec<Arc<CsrMatrix>> = collection
        .iter()
        .map(|e| Arc::new(e.matrix.clone()))
        .collect();
    // Same device-discriminating augmentation as the fleet lane, so the
    // victim actually carries traffic worth migrating.
    let mut rng = SplitMix64::new(0xF1EE7);
    let (rows, density) = if options.smoke {
        (1_500, 0.04)
    } else {
        (4_000, 0.03)
    };
    for _ in 0..3 {
        corpus.push(Arc::new(generators::uniform_random(
            rows, rows, density, &mut rng,
        )));
        corpus.push(Arc::new(generators::skewed_rows(
            300, 1, 150, 0.01, &mut rng,
        )));
    }
    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();

    // The chaos *timing* comes from the traffic stream itself: the death
    // lands where the scenario's split RNG says it does.
    let traffic = TrafficConfig::device_death_mid_stream(corpus.len(), 0x10AD);
    let stream: Vec<TrafficRequest> = TrafficGenerator::new(&traffic)
        .take(options.requests)
        .collect();
    let kill_at = stream
        .iter()
        .position(|r| r.chaos == ChaosEvent::KillDevice)
        .unwrap_or(stream.len() / 2);
    println!(
        "chaos loadtest: {} requests over {} matrices, {} shards per device x {} devices, \
         {} dies at request {kill_at}{}",
        stream.len(),
        corpus.len(),
        options.shards,
        devices,
        victim,
        if options.smoke { " (smoke)" } else { "" }
    );
    print!("{fleet}");

    // Sequential single-device reference: the correctness oracle. Placement
    // differs by construction, so results are compared bit-identically when
    // the kernels agree and to solver tolerance when they do not.
    let reference = SeerEngine::new(trained.gpu_handle(), trained.models_handle());
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            reference.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();

    let make_request = |r: &TrafficRequest| {
        ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
    };

    // Chaos pool: submit the pre-death backlog, kill the victim while that
    // backlog is in flight, then drain. Queued work re-selects onto the
    // survivors (migrations); work caught mid-execution retries once
    // (device_failures / retried).
    let pool = ServingPool::with_fleet(
        fleet.clone(),
        trained.models_handle(),
        PoolConfig::with_shards(options.shards),
    );
    let before_tickets = pool.submit_batch(stream[..kill_at].iter().map(make_request));
    fleet.fail_device(victim).expect("victim is live");
    let before: Vec<_> = before_tickets
        .into_iter()
        .map(|t| t.wait().expect("pre-death ticket resolves"))
        .collect();
    // Post-death throughput, measured after the backlog drained so the
    // window contains only survivor-fleet work.
    let post_start = Instant::now();
    let after_tickets = pool.submit_batch(stream[kill_at..].iter().map(make_request));
    let after: Vec<_> = after_tickets
        .into_iter()
        .map(|t| t.wait().expect("post-death ticket resolves"))
        .collect();
    let post_secs = post_start.elapsed().as_secs_f64();
    let post_rps = (stream.len() - kill_at) as f64 / post_secs;
    let stats = pool.shutdown();

    // Reference throughput: a pool over a fleet that never had the victim,
    // warmed on the same pre-death prefix, timed on the same suffix.
    let never_fleet = build_fleet(devices - 1);
    let never_pool = ServingPool::with_fleet(
        never_fleet,
        trained.models_handle(),
        PoolConfig::with_shards(options.shards),
    );
    for ticket in never_pool.submit_batch(stream[..kill_at].iter().map(make_request)) {
        ticket.wait().expect("warmup ticket resolves");
    }
    let never_start = Instant::now();
    let never_tickets = never_pool.submit_batch(stream[kill_at..].iter().map(make_request));
    for ticket in never_tickets {
        ticket.wait().expect("reference ticket resolves");
    }
    let never_secs = never_start.elapsed().as_secs_f64();
    let never_rps = (stream.len() - kill_at) as f64 / never_secs;
    never_pool.shutdown();

    // Differential: every pooled result against the sequential oracle.
    let mut mismatches = 0usize;
    let mut kernel_agreements = 0usize;
    for (index, (seq, pooled)) in sequential
        .iter()
        .zip(before.iter().chain(&after))
        .enumerate()
    {
        let kernels_agree = seq.selection.kernel == pooled.selection.kernel;
        kernel_agreements += usize::from(kernels_agree);
        let got = pooled.result.as_deref();
        let ok = if kernels_agree {
            got == Some(seq.result.as_slice())
        } else {
            got.is_some_and(|got| {
                got.len() == seq.result.len()
                    && got
                        .iter()
                        .zip(&seq.result)
                        .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0))
            })
        };
        if !ok {
            if mismatches == 0 {
                eprintln!(
                    "MISMATCH at request {index}: sequential {:?} vs pooled {:?}",
                    seq.selection, pooled.selection
                );
            }
            mismatches += 1;
        }
    }

    let victim_lane = stats
        .devices()
        .into_iter()
        .find(|lane| lane.device == victim)
        .expect("victim lane exists");
    let recovery = post_rps / never_rps;
    println!(
        "\npost-death throughput  {post_rps:>10.0} req/s\nnever-had-it fleet     {never_rps:>10.0} req/s\nrecovery ratio         {recovery:>10.2}x"
    );
    println!(
        "chaos counters: {} device failures, {} retried, {} migrations, {} failed, \
         victim served {} of {} routed to it",
        stats.device_failures(),
        stats.retried(),
        stats.migrations(),
        stats.failed(),
        victim_lane.completed,
        victim_lane.submitted,
    );

    // The chaos invariants. Every ticket resolved Ok above (the waits
    // panicked otherwise), so the counters must balance exactly: each
    // device failure was followed by a successful bounded retry, and no
    // request was lost or double-served.
    assert_eq!(mismatches, 0, "pooled results diverged from the oracle");
    assert_eq!(stats.completed(), stream.len() as u64);
    assert_eq!(stats.queue_depth(), 0);
    assert_eq!(stats.failed(), 0, "no ticket may resolve to an error");
    assert_eq!(
        stats.device_failures(),
        stats.retried(),
        "every device failure must be absorbed by the one bounded retry"
    );
    assert!(
        victim_lane.submitted > 0,
        "the scenario must route traffic to the victim before the death"
    );
    assert!(
        stats.migrations() > 0,
        "the victim's backlog must migrate to the survivors"
    );
    assert!(
        recovery >= 0.5,
        "post-death throughput {post_rps:.0} req/s must be within 2x of the \
         never-had-the-device fleet's {never_rps:.0} req/s"
    );
    println!(
        "chaos check: OK ({} requests, 0 unresolved, 0 wrong results, {:.1}% kernel agreement)",
        stream.len(),
        100.0 * kernel_agreements as f64 / stream.len().max(1) as f64
    );

    if let Some(path) = &options.out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"loadtest_serving_chaos\",");
        let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
        let _ = writeln!(json, "  \"requests\": {},", stream.len());
        let _ = writeln!(json, "  \"corpus_matrices\": {},", corpus.len());
        let _ = writeln!(json, "  \"fleet_devices\": {devices},");
        let _ = writeln!(json, "  \"victim\": \"{victim}\",");
        let _ = writeln!(json, "  \"kill_at\": {kill_at},");
        let _ = writeln!(json, "  \"device_failures\": {},", stats.device_failures());
        let _ = writeln!(json, "  \"retried\": {},", stats.retried());
        let _ = writeln!(json, "  \"migrations\": {},", stats.migrations());
        let _ = writeln!(json, "  \"retry_rate\": {:.6},", stats.retry_rate());
        let _ = writeln!(json, "  \"migration_rate\": {:.6},", stats.migration_rate());
        let _ = writeln!(json, "  \"victim_submitted\": {},", victim_lane.submitted);
        let _ = writeln!(json, "  \"victim_completed\": {},", victim_lane.completed);
        let _ = writeln!(json, "  \"post_death_rps\": {post_rps:.0},");
        let _ = writeln!(json, "  \"never_had_device_rps\": {never_rps:.0},");
        let _ = writeln!(json, "  \"recovery_ratio\": {recovery:.2},");
        let _ = writeln!(json, "  \"differential_ok\": true");
        json.push_str("}\n");
        std::fs::write(path, &json).expect("writing the chaos report");
        println!("wrote {path}");
    }
}

/// Maps a traffic-stream service class onto the serving pool's priority.
fn class_priority(class: RequestClass) -> Priority {
    match class {
        RequestClass::Interactive => Priority::Interactive,
        RequestClass::Batch => Priority::Batch,
        RequestClass::BestEffort => Priority::BestEffort,
    }
}

/// The overload lane: calibrate what the pool can actually serve with
/// admission control off, then offer the `sustained_overload` stream at ~4x
/// that rate through a bounded, priority-aware, deadline-aware front door.
/// The pool must stay fully accounted under pressure: zero unresolved
/// tickets, an exact `served + shed + expired + failed == offered` balance
/// mirrored by the pool's own counters, executed results bit-identical to a
/// sequential reference, a bounded interactive-class p99 and shedding that
/// lands on the lower classes.
fn run_overload(options: &Options) {
    /// Per-shard queue bound of the overload pool: small enough that a 4x
    /// overload actually sheds instead of queueing the whole stream.
    const QUEUE_CAPACITY: usize = 32;

    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (trained, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the overload loadtest models");
    let corpus: Vec<Arc<CsrMatrix>> = collection
        .iter()
        .map(|e| Arc::new(e.matrix.clone()))
        .collect();
    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();
    let traffic = TrafficConfig::sustained_overload(corpus.len(), 0x10AD);
    let stream: Vec<TrafficRequest> = TrafficGenerator::new(&traffic)
        .take(options.requests)
        .collect();
    println!(
        "overload loadtest: {} requests over {} matrices, {} shards, queue capacity \
         {QUEUE_CAPACITY}{}",
        stream.len(),
        corpus.len(),
        options.shards,
        if options.smoke { " (smoke)" } else { "" }
    );

    // Sequential oracle: the correctness reference for whatever subset the
    // overloaded pool ends up serving.
    let reference = SeerEngine::new(trained.gpu_handle(), trained.models_handle());
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            reference.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();

    let make_request = |r: &TrafficRequest| {
        let mut request = ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
        .with_priority(class_priority(r.class));
        if let Some(deadline_us) = r.deadline_us {
            request = request.with_timeout(Duration::from_micros(deadline_us));
        }
        request
    };

    // Phase 1: capacity calibration. An admission-free pool serves a prefix
    // as fast as it can — no deadlines, no classes — and that throughput is
    // the pool's sustained capacity.
    let calibration_len = stream.len().min(2_000);
    let calibration_pool =
        ServingPool::from_engine(&reference, PoolConfig::with_shards(options.shards));
    let calibration_start = Instant::now();
    for ticket in calibration_pool.submit_batch(stream[..calibration_len].iter().map(|r| {
        ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
    })) {
        ticket.wait().expect("calibration ticket resolves");
    }
    let capacity_rps = calibration_len as f64 / calibration_start.elapsed().as_secs_f64();
    calibration_pool.shutdown();

    // Phase 2: a fresh admission-controlled pool offered ~4x that capacity.
    // The pool-wide in-flight cap sits below the summed queue bounds so both
    // brakes (per-shard queue, pool-wide cap) can engage.
    let admission = AdmissionConfig::bounded(QUEUE_CAPACITY)
        .with_max_in_flight(options.shards * QUEUE_CAPACITY * 3 / 4)
        .with_shed_policy(ShedPolicy::DropLowestPriority);
    let pool = ServingPool::from_engine(
        &reference,
        PoolConfig::with_shards(options.shards).with_admission(Some(admission)),
    );
    let offered_rate = 4.0 * capacity_rps;
    let mut tickets: Vec<Option<Ticket>> = Vec::with_capacity(stream.len());
    let offered_start = Instant::now();
    let mut next = 0usize;
    while next < stream.len() {
        // Catch-up pacing: submit everything due by now, then nap. The
        // offered rate tracks the 4x target even with coarse sleeps.
        let due = (((offered_start.elapsed().as_secs_f64() * offered_rate) as usize).max(next + 1))
            .min(stream.len());
        while next < due {
            tickets.push(match pool.try_submit(make_request(&stream[next])) {
                SubmitOutcome::Accepted(ticket) => Some(ticket),
                SubmitOutcome::Shed { .. } => None,
            });
            next += 1;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let offered_rps = stream.len() as f64 / offered_start.elapsed().as_secs_f64();

    // Resolve every ticket. `wait_timeout` returning `None` means a ticket
    // leaked — exactly what the admission controller must never allow.
    let mut served = 0u64;
    let mut shed = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    let mut offered_by_class = [0u64; 3];
    let mut served_by_class = [0u64; 3];
    let mut shed_by_class = [0u64; 3];
    let mut mismatches = 0usize;
    for (index, slot) in tickets.iter_mut().enumerate() {
        let lane = class_priority(stream[index].class).lane();
        offered_by_class[lane] += 1;
        let Some(ticket) = slot else {
            shed += 1;
            shed_by_class[lane] += 1;
            continue;
        };
        match ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(Some(response)) => {
                served += 1;
                served_by_class[lane] += 1;
                let seq = &sequential[index];
                let ok = response.selection == seq.selection
                    && response.result.as_deref() == Some(seq.result.as_slice());
                if !ok {
                    if mismatches == 0 {
                        eprintln!(
                            "MISMATCH at request {index}: sequential {:?} vs pooled {:?}",
                            seq.selection, response.selection
                        );
                    }
                    mismatches += 1;
                }
            }
            Ok(None) => panic!("request {index} unresolved after 30s — a ticket leaked"),
            Err(ServingError::DeadlineExceeded { .. }) => expired += 1,
            Err(ServingError::Shed { .. }) => {
                shed += 1;
                shed_by_class[lane] += 1;
            }
            Err(other) => {
                eprintln!("request {index} failed: {other}");
                failed += 1;
            }
        }
    }
    let stats = pool.shutdown();

    let shed_rate = |lane: usize| shed_by_class[lane] as f64 / offered_by_class[lane].max(1) as f64;
    let interactive_p99 = stats.latency.end_to_end(Priority::Interactive).p99();
    let interactive_wait_p99 = stats.latency.queue_wait(Priority::Interactive).p99();
    println!(
        "\ncapacity (calibrated)  {capacity_rps:>10.0} req/s\noffered                {offered_rps:>10.0} req/s ({:.1}x capacity)",
        offered_rps / capacity_rps
    );
    println!(
        "outcomes: {served} served, {shed} shed, {expired} expired, {failed} failed \
         of {} offered",
        stream.len()
    );
    println!(
        "front door: {} queue-full, {} in-flight-cap, {} evicted, {} closed",
        stats.admission.shed_queue_full,
        stats.admission.shed_in_flight,
        stats.admission.evicted,
        stats.admission.shed_closed,
    );
    for priority in Priority::ALL {
        let lane = priority.lane();
        println!(
            "  {priority:<12} offered {:>6}  served {:>6}  shed {:>6} ({:>5.1}%)  \
             queue-wait p99 {:>9.1?}  e2e p99 {:>9.1?}",
            offered_by_class[lane],
            served_by_class[lane],
            shed_by_class[lane],
            100.0 * shed_rate(lane),
            stats.latency.queue_wait(priority).p99(),
            stats.latency.end_to_end(priority).p99(),
        );
    }

    // The overload invariants. Exact balance first: the harness's view and
    // the pool's own counters must agree term by term.
    assert_eq!(
        served + shed + expired + failed,
        stream.len() as u64,
        "every offered request resolves exactly once"
    );
    assert_eq!(stats.offered(), stream.len() as u64);
    assert_eq!(stats.served(), served, "served balance");
    assert_eq!(stats.shed(), shed, "shed balance");
    assert_eq!(stats.expired(), expired, "expired balance");
    assert_eq!(stats.failed(), failed, "failed balance");
    assert_eq!(failed, 0, "overload is not an error path");
    assert_eq!(stats.admission.in_flight, 0, "no in-flight slot leaked");
    assert_eq!(stats.queue_depth(), 0);
    assert_eq!(mismatches, 0, "served results diverged from the oracle");
    assert!(shed > 0, "a 4x overload must shed");
    assert!(
        served > 0,
        "an admission-controlled pool under overload still serves"
    );
    // Interactive latency stays bounded by the queue, not by the backlog:
    // a served interactive request waited behind at most a queue's worth of
    // work (generous 8x slack for the service-time mix).
    let mean_service = Duration::from_secs_f64(options.shards as f64 / capacity_rps);
    let p99_bound = mean_service * (8 * (QUEUE_CAPACITY as u32 + 2));
    assert!(
        interactive_p99 <= p99_bound,
        "interactive p99 {interactive_p99:?} exceeds the bounded-queue limit {p99_bound:?}"
    );
    // Shedding lands on the lower classes: under DropLowestPriority the
    // interactive slice sheds at a strictly lower rate than best-effort.
    assert!(
        shed_rate(0) < shed_rate(2),
        "interactive shed rate {:.3} must stay below best-effort's {:.3}",
        shed_rate(0),
        shed_rate(2)
    );
    println!(
        "overload check: OK ({} requests, 0 unresolved, exact balance, \
         interactive p99 {interactive_p99:.1?} <= {p99_bound:.1?}, queue-wait p99 {interactive_wait_p99:.1?})",
        stream.len()
    );

    if let Some(path) = &options.out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"loadtest_serving_overload\",");
        let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
        let _ = writeln!(json, "  \"requests\": {},", stream.len());
        let _ = writeln!(json, "  \"corpus_matrices\": {},", corpus.len());
        let _ = writeln!(json, "  \"shards\": {},", options.shards);
        let _ = writeln!(json, "  \"queue_capacity\": {QUEUE_CAPACITY},");
        let _ = writeln!(json, "  \"capacity_rps\": {capacity_rps:.0},");
        let _ = writeln!(json, "  \"offered_rps\": {offered_rps:.0},");
        let _ = writeln!(json, "  \"served\": {served},");
        let _ = writeln!(json, "  \"shed\": {shed},");
        let _ = writeln!(json, "  \"expired\": {expired},");
        let _ = writeln!(json, "  \"failed\": {failed},");
        let _ = writeln!(
            json,
            "  \"shed_queue_full\": {},",
            stats.admission.shed_queue_full
        );
        let _ = writeln!(
            json,
            "  \"shed_in_flight\": {},",
            stats.admission.shed_in_flight
        );
        let _ = writeln!(json, "  \"evicted\": {},", stats.admission.evicted);
        let _ = writeln!(
            json,
            "  \"backpressure_waits\": {},",
            stats.admission.backpressure_waits
        );
        let _ = writeln!(json, "  \"classes\": [");
        for (index, priority) in Priority::ALL.into_iter().enumerate() {
            let lane = priority.lane();
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"class\": \"{priority}\",");
            let _ = writeln!(json, "      \"offered\": {},", offered_by_class[lane]);
            let _ = writeln!(json, "      \"served\": {},", served_by_class[lane]);
            let _ = writeln!(json, "      \"shed\": {},", shed_by_class[lane]);
            let _ = writeln!(
                json,
                "      \"queue_wait_p99_us\": {:.1},",
                stats.latency.queue_wait(priority).p99().as_secs_f64() * 1e6
            );
            let _ = writeln!(
                json,
                "      \"end_to_end_p99_us\": {:.1}",
                stats.latency.end_to_end(priority).p99().as_secs_f64() * 1e6
            );
            let _ = writeln!(
                json,
                "    }}{}",
                if index + 1 < Priority::ALL.len() {
                    ","
                } else {
                    ""
                }
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(
            json,
            "  \"interactive_p99_us\": {:.1},",
            interactive_p99.as_secs_f64() * 1e6
        );
        let _ = writeln!(
            json,
            "  \"p99_bound_us\": {:.1},",
            p99_bound.as_secs_f64() * 1e6
        );
        let _ = writeln!(json, "  \"balance_ok\": true,");
        let _ = writeln!(json, "  \"differential_ok\": true");
        json.push_str("}\n");
        std::fs::write(path, &json).expect("writing the overload report");
        println!("wrote {path}");
    }
}

/// What one burst-lane phase measured: throughput on both sides, the
/// submitter-thread latency split by cold-vs-warm matrix, and the pool's
/// own counters.
struct BurstPhase {
    sequential_rps: f64,
    pooled_rps: f64,
    cold_p99: Duration,
    warm_p99: Duration,
    cold_submits: usize,
    warm_submits: usize,
    stats: seer_core::serving::PoolStats,
}

/// p99 of a latency sample set (`ZERO` when empty). Sorts in place.
fn sample_p99(samples: &mut [Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    samples.sort_unstable();
    samples[(samples.len() - 1) * 99 / 100]
}

/// One burst-lane phase: replay `stream` through a sequential oracle, then
/// through the given routed pool, timing every submit on the submitter
/// thread and classifying it cold (first sight of the matrix) or warm.
/// Asserts the shared invariants — bit-identical results, exact balance,
/// every submit routed off-thread, and a cold-submit p99 that stays in the
/// same regime as the warm one (submit cost must not depend on whether the
/// matrix needs a cold routing decision).
fn run_burst_phase(
    label: &str,
    stream: &[TrafficRequest],
    corpus: &[Arc<CsrMatrix>],
    inputs: &[Arc<Vec<Scalar>>],
    oracle: &SeerEngine,
    pool: ServingPool,
) -> BurstPhase {
    let sequential_start = Instant::now();
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            oracle.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();
    let sequential_rps = stream.len() as f64 / sequential_start.elapsed().as_secs_f64();

    let mut seen = vec![false; corpus.len()];
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    let mut tickets = Vec::with_capacity(stream.len());
    let pooled_start = Instant::now();
    for r in stream {
        let request = ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        );
        let submit_start = Instant::now();
        let ticket = pool.submit(request);
        let elapsed = submit_start.elapsed();
        if std::mem::replace(&mut seen[r.matrix_index], true) {
            warm.push(elapsed);
        } else {
            cold.push(elapsed);
        }
        tickets.push(ticket);
    }
    let mut mismatches = 0usize;
    for (index, (mut ticket, seq)) in tickets.into_iter().zip(&sequential).enumerate() {
        let response = match ticket.wait_timeout(Duration::from_secs(30)) {
            Ok(Some(response)) => response,
            Ok(None) => panic!("{label}: request {index} unresolved after 30s — a ticket leaked"),
            Err(error) => panic!("{label}: request {index} failed: {error}"),
        };
        let ok = response.selection == seq.selection
            && response.result.as_deref() == Some(seq.result.as_slice());
        if !ok {
            if mismatches == 0 {
                eprintln!(
                    "MISMATCH at {label} request {index}: sequential {:?} vs pooled {:?}",
                    seq.selection, response.selection
                );
            }
            mismatches += 1;
        }
    }
    let pooled_rps = stream.len() as f64 / pooled_start.elapsed().as_secs_f64();
    let stats = pool.shutdown();

    assert_eq!(
        mismatches, 0,
        "{label}: pooled results diverged from the sequential oracle"
    );
    let n = stream.len() as u64;
    assert!(stats.routing.enabled, "{label}: pool must be routed");
    assert_eq!(
        stats.routing.routed_async, n,
        "{label}: every accepted request routes off the submitter thread"
    );
    assert_eq!(stats.routing.submit.count(), n);
    assert_eq!(stats.routing.in_stage, 0, "{label}: routing stage drained");
    assert_eq!(
        stats.routing.shed_stage_full + stats.routing.stage_closed,
        0
    );
    assert_eq!(stats.offered(), n);
    assert_eq!(stats.served(), n);
    assert_eq!(stats.shed() + stats.expired() + stats.failed(), 0);
    assert_eq!(stats.queue_depth(), 0);

    // Submit is an O(1) stage enqueue: a cold matrix (routing decision still
    // to be made) must cost the submitter the same as a warm one. The p99
    // bound is relative to warm with an absolute scheduler-noise floor.
    let cold_p99 = sample_p99(&mut cold);
    let warm_p99 = sample_p99(&mut warm);
    let bound = (warm_p99.max(Duration::from_micros(50)) * 32).max(Duration::from_millis(10));
    assert!(
        cold_p99 <= bound,
        "{label}: cold-matrix submit p99 {cold_p99:?} exceeds {bound:?} \
         (warm p99 {warm_p99:?}) — submit is no longer O(1)"
    );
    assert!(
        stats.routing.submit.p99() <= Duration::from_millis(10),
        "{label}: submitter-thread p99 {:?} exceeds 10ms",
        stats.routing.submit.p99()
    );

    println!(
        "{label}: {} requests, sequential {sequential_rps:.0} req/s, pooled {pooled_rps:.0} req/s, \
         submit p99 {:?} (cold {cold_p99:?} x{}, warm {warm_p99:?} x{}), \
         {} batched in {} activations (mean {:.2})",
        stream.len(),
        stats.routing.submit.p99(),
        cold.len(),
        warm.len(),
        stats.routing.batched_requests,
        stats.routing.batch_activations,
        stats.routing.mean_batch_size(),
    );
    BurstPhase {
        sequential_rps,
        pooled_rps,
        cold_p99,
        warm_p99,
        cold_submits: cold.len(),
        warm_submits: warm.len(),
        stats,
    }
}

/// The burst lane: same-fingerprint micro-batching and O(1) submit under
/// the two routing-centric traffic scenarios. Phase one replays
/// `identical_burst` (hot set, long fully-identical bursts) through a
/// routed single-device pool and demands real coalescing: at most one plan
/// activation per two batched requests. Phase two replays `routing_storm`
/// (cache-hostile, every burst identical, cold matrices flooding in)
/// through a routed three-device fleet pool, where a pre-routing submit
/// path would pay a per-cold-matrix placement sweep on the submitter
/// thread — the cold/warm p99 assertion pins that cost to the routing
/// worker instead. Both phases are differentials against a sequential
/// oracle and must be bit-identical.
fn run_burst(options: &Options) {
    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (trained, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the burst loadtest models");
    let corpus: Vec<Arc<CsrMatrix>> = collection
        .iter()
        .map(|e| Arc::new(e.matrix.clone()))
        .collect();
    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();
    println!(
        "burst loadtest: {} requests per phase over {} matrices, {} shards{}",
        options.requests,
        corpus.len(),
        options.shards,
        if options.smoke { " (smoke)" } else { "" }
    );

    // An unbounded stage isolates what this lane measures: the submit cost
    // is the stage enqueue itself, never a backpressure wait.
    let routing = RoutingConfig::default().with_stage_capacity(0);

    // Phase one: identical bursts, single device — the micro-batching case.
    let reference = SeerEngine::new(trained.gpu_handle(), trained.models_handle());
    let burst_stream: Vec<TrafficRequest> =
        TrafficGenerator::new(&TrafficConfig::identical_burst(corpus.len(), 0x10AD))
            .take(options.requests)
            .collect();
    let burst = run_burst_phase(
        "identical_burst",
        &burst_stream,
        &corpus,
        &inputs,
        &reference,
        ServingPool::from_engine(
            &reference,
            PoolConfig::with_shards(options.shards).with_routing(Some(routing)),
        ),
    );
    // The acceptance bar: the identical-burst stream coalesces for real — at
    // least a 2x reduction in plan activations over its batched span.
    assert!(
        burst.stats.routing.batch_activations >= 1,
        "identical_burst: the stream must form at least one coalesced run"
    );
    assert!(
        burst.stats.routing.batch_activations <= burst.stats.routing.batched_requests / 2,
        "identical_burst: {} activations for {} batched requests — less than \
         2x activation reduction",
        burst.stats.routing.batch_activations,
        burst.stats.routing.batched_requests,
    );
    assert!(
        burst.stats.routing.mean_batch_size() >= 2.0,
        "coalesced runs have two or more members by construction"
    );

    // Phase two: a cold-matrix storm over a heterogeneous fleet — the O(1)
    // submit case (placement decisions are the expensive part to offload).
    let fleet = build_fleet(3);
    let storm_oracle = SeerEngine::with_fleet(fleet.clone(), trained.models_handle());
    let storm_stream: Vec<TrafficRequest> =
        TrafficGenerator::new(&TrafficConfig::routing_storm(corpus.len(), 0x570F4))
            .take(options.requests)
            .collect();
    let storm = run_burst_phase(
        "routing_storm",
        &storm_stream,
        &corpus,
        &inputs,
        &storm_oracle,
        ServingPool::with_fleet(
            fleet,
            trained.models_handle(),
            PoolConfig::with_shards(options.shards).with_routing(Some(routing)),
        ),
    );

    println!(
        "burst check: OK ({} requests per phase, 0 unresolved, exact balance, \
         bit-identical, {:.2} mean batch size)",
        options.requests,
        burst.stats.routing.mean_batch_size()
    );

    if let Some(path) = &options.out {
        let phase_json = |json: &mut String, name: &str, phase: &BurstPhase, n: usize| {
            let routing = &phase.stats.routing;
            let _ = writeln!(json, "  \"{name}\": {{");
            let _ = writeln!(json, "    \"requests\": {n},");
            let _ = writeln!(json, "    \"sequential_rps\": {:.0},", phase.sequential_rps);
            let _ = writeln!(json, "    \"pooled_rps\": {:.0},", phase.pooled_rps);
            let _ = writeln!(json, "    \"routed_async\": {},", routing.routed_async);
            let _ = writeln!(
                json,
                "    \"batched_requests\": {},",
                routing.batched_requests
            );
            let _ = writeln!(
                json,
                "    \"batch_activations\": {},",
                routing.batch_activations
            );
            let _ = writeln!(
                json,
                "    \"mean_batch_size\": {:.2},",
                routing.mean_batch_size()
            );
            let _ = writeln!(
                json,
                "    \"submit_p99_us\": {:.1},",
                routing.submit.p99().as_secs_f64() * 1e6
            );
            let _ = writeln!(json, "    \"cold_submits\": {},", phase.cold_submits);
            let _ = writeln!(
                json,
                "    \"cold_submit_p99_us\": {:.1},",
                phase.cold_p99.as_secs_f64() * 1e6
            );
            let _ = writeln!(json, "    \"warm_submits\": {},", phase.warm_submits);
            let _ = writeln!(
                json,
                "    \"warm_submit_p99_us\": {:.1}",
                phase.warm_p99.as_secs_f64() * 1e6
            );
            let _ = writeln!(json, "  }},");
        };
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"loadtest_serving_burst\",");
        let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
        let _ = writeln!(json, "  \"corpus_matrices\": {},", corpus.len());
        let _ = writeln!(json, "  \"shards\": {},", options.shards);
        phase_json(&mut json, "identical_burst", &burst, burst_stream.len());
        phase_json(&mut json, "routing_storm", &storm, storm_stream.len());
        let _ = writeln!(json, "  \"storm_fleet_devices\": 3,");
        let _ = writeln!(json, "  \"balance_ok\": true,");
        let _ = writeln!(json, "  \"differential_ok\": true");
        json.push_str("}\n");
        std::fs::write(path, &json).expect("writing the burst report");
        println!("wrote {path}");
    }
}

fn main() {
    let options = parse_options();
    if options.chaos {
        run_chaos(&options);
        return;
    }
    if options.overload {
        run_overload(&options);
        return;
    }
    if options.burst {
        run_burst(&options);
        return;
    }

    // Deterministic setup: corpus, trained engine, request stream.
    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (trained, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the loadtest models");

    let mut corpus: Vec<Arc<CsrMatrix>> = if options.families {
        // The family lane swaps the golden corpus for near-duplicate
        // families (the trained models still come from the collection).
        family_corpus(if options.smoke { 8 } else { 16 })
    } else {
        collection
            .iter()
            .map(|e| Arc::new(e.matrix.clone()))
            .collect()
    };

    // Fleet mode: a corpus whose slices win on different devices — big
    // bandwidth-bound uniform matrices for the flagships, small skew-heavy
    // ones for the low-overhead devices — under a wide iteration mix.
    let fleet = (options.fleet > 0).then(|| build_fleet(options.fleet));
    if fleet.is_some() {
        let mut rng = SplitMix64::new(0xF1EE7);
        let (rows, density) = if options.smoke {
            (1_500, 0.04)
        } else {
            (4_000, 0.03)
        };
        for _ in 0..3 {
            corpus.push(Arc::new(generators::uniform_random(
                rows, rows, density, &mut rng,
            )));
            corpus.push(Arc::new(generators::skewed_rows(
                300, 1, 150, 0.01, &mut rng,
            )));
        }
    }

    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();
    let traffic = if options.families {
        TrafficConfig::near_duplicate_families(corpus.len(), 0x10AD)
    } else {
        match &fleet {
            Some(_) => TrafficConfig::fleet_mixed(corpus.len(), 0x10AD),
            None => TrafficConfig::skewed(corpus.len(), 0x10AD),
        }
    };
    let stream: Vec<TrafficRequest> = TrafficGenerator::new(&traffic)
        .take(options.requests)
        .collect();
    println!(
        "loadtest: {} requests over {} matrices, {} shards{}{}{}",
        stream.len(),
        corpus.len(),
        options.shards,
        match &fleet {
            Some(fleet) => format!(" per device x {} devices", fleet.len()),
            None => String::new(),
        },
        if options.families {
            " (family lane, class reuse on)"
        } else {
            ""
        },
        if options.smoke { " (smoke)" } else { "" }
    );
    if let Some(fleet) = &fleet {
        print!("{fleet}");
    }

    // Sequential baseline: one engine (fleet-aware in fleet mode), one
    // thread, same stream.
    let engine = match &fleet {
        Some(fleet) => SeerEngine::with_fleet(fleet.clone(), trained.models_handle()),
        None => SeerEngine::new(trained.gpu_handle(), trained.models_handle()),
    };
    let sequential_start = Instant::now();
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            engine.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();
    let sequential_secs = sequential_start.elapsed().as_secs_f64();
    let sequential_rps = stream.len() as f64 / sequential_secs;
    let engine_stats = engine.stats();

    // Pooled run: same models, fresh caches, N shards (per device). The
    // family lane turns structure-class inheritance on pool-side only: the
    // sequential engine stays the from-scratch reference the differential
    // measures inheritance against.
    let pool_config = PoolConfig::with_shards(options.shards).with_class_reuse(options.families);
    let pool = match &fleet {
        Some(fleet) => ServingPool::with_fleet(fleet.clone(), trained.models_handle(), pool_config),
        None => ServingPool::from_engine(&engine, pool_config),
    };
    let pooled_start = Instant::now();
    let tickets = pool.submit_batch(stream.iter().map(|r| {
        ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
    }));
    let pooled: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("healthy worker"))
        .collect();
    let pooled_secs = pooled_start.elapsed().as_secs_f64();
    let pooled_rps = stream.len() as f64 / pooled_secs;
    let stats = pool.shutdown();

    // Differential check. Classic lanes demand a bit-identical replay. The
    // family lane serves with inheritance, which is arrival-order-sensitive
    // under concurrency — a shard may decide a class before or after its
    // seed — so the guarantee is graded: whenever pooled and sequential
    // agree on the kernel the result must still be bit-identical, and when
    // they diverge the results must agree to solver tolerance.
    let mut mismatches = 0usize;
    let mut kernel_agreements = 0usize;
    for (index, (seq, pool_response)) in sequential.iter().zip(&pooled).enumerate() {
        let pooled_result = pool_response.result.as_deref();
        let ok = if options.families {
            let kernels_agree = seq.selection.kernel == pool_response.selection.kernel;
            kernel_agreements += usize::from(kernels_agree);
            if kernels_agree {
                pooled_result == Some(seq.result.as_slice())
            } else {
                pooled_result.is_some_and(|got| {
                    got.len() == seq.result.len()
                        && got
                            .iter()
                            .zip(&seq.result)
                            .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0))
                })
            }
        } else {
            seq.selection == pool_response.selection && pooled_result == Some(seq.result.as_slice())
        };
        if !ok {
            if mismatches == 0 {
                eprintln!(
                    "MISMATCH at request {index}: sequential {:?} vs pooled {:?}",
                    seq.selection, pool_response.selection
                );
            }
            mismatches += 1;
        }
    }

    let aggregated = stats.engine();
    println!("\n                     requests/sec    plan hit rate");
    println!(
        "  sequential (1 thr)   {sequential_rps:>10.0}          {:>5.1}%",
        engine_stats.plan_hit_rate() * 100.0
    );
    println!(
        "  pooled ({} shards)    {pooled_rps:>10.0}          {:>5.1}%",
        stats.shards.len(),
        aggregated.plan_hit_rate() * 100.0
    );
    let speedup = pooled_rps / sequential_rps;
    println!("  speedup              {speedup:>10.2}x");
    println!("\nper-shard: (device / submitted / completed / hits / misses / cached plans)");
    for shard in &stats.shards {
        println!(
            "  shard {}: {} / {:>6} / {:>6} / {:>6} / {:>6} / {:>4}",
            shard.shard,
            shard.device,
            shard.submitted,
            shard.completed,
            shard.engine.plan_hits,
            shard.engine.plan_misses,
            shard.cached_plans
        );
    }
    let lanes = stats.devices();
    if fleet.is_some() {
        println!("\nper-device: (shards / submitted / completed / queue / preparations)");
        for lane in &lanes {
            println!(
                "  {}: {} / {:>6} / {:>6} / {:>3} / {:>5}",
                lane.device,
                lane.shards,
                lane.submitted,
                lane.completed,
                lane.queue_depth(),
                lane.engine.plan_preparations
            );
        }
    }
    println!(
        "\ntotals: {} submitted, {} completed, queue depth {}, {} feature collections, {} fallbacks",
        stats.submitted(),
        stats.completed(),
        stats.queue_depth(),
        aggregated.feature_collections,
        aggregated.misprediction_fallbacks
    );

    // Invariants the driver relies on, checked on every run including smoke.
    assert_eq!(mismatches, 0, "pooled results diverged from sequential");
    assert_eq!(stats.completed(), stream.len() as u64);
    assert_eq!(stats.queue_depth(), 0);
    assert_eq!(
        aggregated.selections(),
        stream.len() as u64,
        "every request makes exactly one selection"
    );
    // Per-device lanes partition the pool exactly.
    assert_eq!(
        lanes.iter().map(|l| l.completed).sum::<u64>(),
        stats.completed()
    );
    if let Some(fleet) = &fleet {
        assert_eq!(lanes.len(), fleet.len());
        let active = lanes.iter().filter(|lane| lane.completed > 0).count();
        assert!(
            active > 1,
            "heterogeneous traffic must exercise more than one device, got {active}"
        );
    }
    let kernel_agreement = kernel_agreements as f64 / stream.len().max(1) as f64;
    if options.families {
        println!(
            "\nfamily lane: {} inherited selections, {} class hits, kernel agreement \
             {:.1}% vs the from-scratch sequential replay",
            aggregated.inherited_selections,
            aggregated.class_hits,
            100.0 * kernel_agreement
        );
        assert!(
            aggregated.inherited_selections > 0,
            "family traffic with class reuse on must inherit at least one selection"
        );
        println!(
            "differential check: OK ({} requests, bit-identical on kernel agreement, \
             solver tolerance otherwise)",
            stream.len()
        );
    } else {
        println!(
            "\ndifferential check: OK ({} requests bit-identical)",
            stream.len()
        );
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if options.assert_speedup {
        if cpus >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >= 2x pooled speedup on {cpus} CPUs, measured {speedup:.2}x"
            );
            println!("speedup check: OK ({speedup:.2}x on {cpus} CPUs)");
        } else {
            println!("speedup check: skipped ({cpus} CPU(s) available, need >= 4)");
        }
    }

    if let Some(path) = &options.out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"loadtest_serving\",");
        let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
        let _ = writeln!(json, "  \"requests\": {},", stream.len());
        let _ = writeln!(json, "  \"corpus_matrices\": {},", corpus.len());
        let _ = writeln!(json, "  \"shards\": {},", stats.shards.len());
        let _ = writeln!(
            json,
            "  \"fleet_devices\": {},",
            fleet.as_ref().map_or(1, Fleet::len)
        );
        let _ = writeln!(json, "  \"families\": {},", options.families);
        if options.families {
            let _ = writeln!(
                json,
                "  \"inherited_selections\": {},",
                aggregated.inherited_selections
            );
            let _ = writeln!(json, "  \"class_hits\": {},", aggregated.class_hits);
            let _ = writeln!(json, "  \"kernel_agreement\": {kernel_agreement:.4},");
        }
        let _ = writeln!(json, "  \"sequential_rps\": {sequential_rps:.0},");
        let _ = writeln!(json, "  \"pooled_rps\": {pooled_rps:.0},");
        let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
        let _ = writeln!(
            json,
            "  \"plan_hit_rate\": {:.4},",
            aggregated.plan_hit_rate()
        );
        let _ = writeln!(
            json,
            "  \"plan_preparations\": {},",
            aggregated.plan_preparations
        );
        let _ = writeln!(json, "  \"devices\": [");
        for (index, lane) in lanes.iter().enumerate() {
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"device\": \"{}\",", lane.device);
            let _ = writeln!(
                json,
                "      \"name\": \"{}\",",
                fleet.as_ref().map_or_else(
                    || engine.gpu().spec().name.clone(),
                    |fleet| fleet.device(lane.device).name().to_string()
                )
            );
            let _ = writeln!(json, "      \"shards\": {},", lane.shards);
            let _ = writeln!(json, "      \"submitted\": {},", lane.submitted);
            let _ = writeln!(json, "      \"completed\": {},", lane.completed);
            let _ = writeln!(json, "      \"plan_hits\": {},", lane.engine.plan_hits);
            let _ = writeln!(json, "      \"plan_misses\": {},", lane.engine.plan_misses);
            let _ = writeln!(
                json,
                "      \"plan_preparations\": {}",
                lane.engine.plan_preparations
            );
            let _ = writeln!(
                json,
                "    }}{}",
                if index + 1 < lanes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(json, "  \"differential_ok\": true");
        json.push_str("}\n");
        std::fs::write(path, &json).expect("writing the loadtest report");
        println!("wrote {path}");
    }
}
