//! Load test of the sharded [`ServingPool`] against a sequential
//! [`SeerEngine`] on the same deterministic traffic stream.
//!
//! The stream comes from [`seer_sparse::traffic`] (Zipf-like hot set, bursts,
//! bimodal iteration counts), so every run — and every future regression
//! check — replays the exact same requests. Both sides execute the full
//! select-and-run pipeline: plan lookup/computation plus a functional SpMV of
//! the chosen kernel, which is the CPU-bound work that gives the pool
//! something real to parallelize.
//!
//! ```text
//! cargo run -p seer_bench --release --bin loadtest_serving            # full run
//! cargo run -p seer_bench --release --bin loadtest_serving -- --smoke # CI smoke
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --shards 8 --requests 20000                                     # custom
//! ```
//!
//! The binary always verifies that the pooled responses are bit-identical to
//! the sequential replay (selections and result vectors) before printing
//! throughput, and exits non-zero on any mismatch. The pooled-vs-sequential
//! speedup is reported but only *asserted* (>= 2x, the PR acceptance bar)
//! when the machine actually has >= 4 CPUs available and `--assert-speedup`
//! is passed, because a 4-shard pool cannot beat a single thread on a
//! single-core box no matter how good the code is.

use std::sync::Arc;
use std::time::Instant;

use seer_core::engine::SeerEngine;
use seer_core::serving::{PoolConfig, ServingPool, ServingRequest};
use seer_core::training::TrainingConfig;
use seer_gpu::Gpu;
use seer_sparse::collection::{generate, CollectionConfig, SizeScale};
use seer_sparse::traffic::{TrafficConfig, TrafficGenerator, TrafficRequest};
use seer_sparse::{CsrMatrix, Scalar};

struct Options {
    smoke: bool,
    shards: usize,
    requests: usize,
    assert_speedup: bool,
}

fn parse_options() -> Options {
    let mut options = Options {
        smoke: false,
        shards: 4,
        requests: 8_000,
        assert_speedup: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--assert-speedup" => options.assert_speedup = true,
            "--shards" => {
                options.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards takes a positive integer");
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests takes a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: loadtest_serving [--smoke] [--shards N] [--requests N] [--assert-speedup]");
                std::process::exit(2);
            }
        }
    }
    if options.smoke {
        options.requests = options.requests.min(1_000);
    }
    options
}

fn main() {
    let options = parse_options();

    // Deterministic setup: corpus, trained engine, request stream.
    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (engine, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the loadtest models");

    let corpus: Vec<Arc<CsrMatrix>> = collection
        .iter()
        .map(|e| Arc::new(e.matrix.clone()))
        .collect();
    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();
    let stream: Vec<TrafficRequest> =
        TrafficGenerator::new(&TrafficConfig::skewed(corpus.len(), 0x10AD))
            .take(options.requests)
            .collect();
    println!(
        "loadtest: {} requests over {} matrices, {} shards{}",
        stream.len(),
        corpus.len(),
        options.shards,
        if options.smoke { " (smoke)" } else { "" }
    );

    // Sequential baseline: one engine, one thread, same stream.
    let sequential_start = Instant::now();
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            engine.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();
    let sequential_secs = sequential_start.elapsed().as_secs_f64();
    let sequential_rps = stream.len() as f64 / sequential_secs;
    let engine_stats = engine.stats();

    // Pooled run: same models, fresh caches, N shards.
    let pool = ServingPool::from_engine(&engine, PoolConfig::with_shards(options.shards));
    let pooled_start = Instant::now();
    let tickets = pool.submit_batch(stream.iter().map(|r| {
        ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
    }));
    let pooled: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let pooled_secs = pooled_start.elapsed().as_secs_f64();
    let pooled_rps = stream.len() as f64 / pooled_secs;
    let stats = pool.shutdown();

    // Differential check: the pool must be a bit-identical replay.
    let mut mismatches = 0usize;
    for (index, (seq, pool_response)) in sequential.iter().zip(&pooled).enumerate() {
        if seq.selection != pool_response.selection
            || pool_response.result.as_deref() != Some(seq.result.as_slice())
        {
            if mismatches == 0 {
                eprintln!(
                    "MISMATCH at request {index}: sequential {:?} vs pooled {:?}",
                    seq.selection, pool_response.selection
                );
            }
            mismatches += 1;
        }
    }

    let aggregated = stats.engine();
    println!("\n                     requests/sec    plan hit rate");
    println!(
        "  sequential (1 thr)   {sequential_rps:>10.0}          {:>5.1}%",
        engine_stats.plan_hit_rate() * 100.0
    );
    println!(
        "  pooled ({} shards)    {pooled_rps:>10.0}          {:>5.1}%",
        options.shards,
        aggregated.plan_hit_rate() * 100.0
    );
    let speedup = pooled_rps / sequential_rps;
    println!("  speedup              {speedup:>10.2}x");
    println!("\nper-shard: (submitted / completed / hits / misses / cached plans)");
    for shard in &stats.shards {
        println!(
            "  shard {}: {:>6} / {:>6} / {:>6} / {:>6} / {:>4}",
            shard.shard,
            shard.submitted,
            shard.completed,
            shard.engine.plan_hits,
            shard.engine.plan_misses,
            shard.cached_plans
        );
    }
    println!(
        "\ntotals: {} submitted, {} completed, queue depth {}, {} feature collections, {} fallbacks",
        stats.submitted(),
        stats.completed(),
        stats.queue_depth(),
        aggregated.feature_collections,
        aggregated.misprediction_fallbacks
    );

    // Invariants the driver relies on, checked on every run including smoke.
    assert_eq!(mismatches, 0, "pooled results diverged from sequential");
    assert_eq!(stats.completed(), stream.len() as u64);
    assert_eq!(stats.queue_depth(), 0);
    assert_eq!(
        aggregated.selections(),
        stream.len() as u64,
        "every request makes exactly one selection"
    );
    println!(
        "\ndifferential check: OK ({} requests bit-identical)",
        stream.len()
    );

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if options.assert_speedup {
        if cpus >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >= 2x pooled speedup on {cpus} CPUs, measured {speedup:.2}x"
            );
            println!("speedup check: OK ({speedup:.2}x on {cpus} CPUs)");
        } else {
            println!("speedup check: skipped ({cpus} CPU(s) available, need >= 4)");
        }
    }
}
