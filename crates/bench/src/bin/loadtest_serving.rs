//! Load test of the sharded [`ServingPool`] against a sequential
//! [`SeerEngine`] on the same deterministic traffic stream — in both the
//! classic single-device configuration and a heterogeneous device fleet.
//!
//! The stream comes from [`seer_sparse::traffic`] (Zipf-like hot set, bursts,
//! bimodal iteration counts; the fleet scenario widens the iteration mix so
//! placement varies), so every run — and every future regression check —
//! replays the exact same requests. Both sides execute the full
//! select-and-run pipeline: plan lookup/computation plus a functional SpMV of
//! the chosen kernel, which is the CPU-bound work that gives the pool
//! something real to parallelize.
//!
//! ```text
//! cargo run -p seer_bench --release --bin loadtest_serving            # full run
//! cargo run -p seer_bench --release --bin loadtest_serving -- --smoke # CI smoke
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --shards 8 --requests 20000                                     # custom
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --fleet 3 --smoke --out BENCH_loadtest_fleet3.json              # fleet CI
//! cargo run -p seer_bench --release --bin loadtest_serving -- \
//!     --families --smoke --out BENCH_loadtest_families.json           # family CI
//! ```
//!
//! `--fleet N` builds an `N`-device heterogeneous fleet (MI250-class, MI100,
//! consumer, APU presets in that order), augments the corpus with
//! bandwidth-bound and skew-heavy slices that win on different devices,
//! routes through the device-aware pool (`--shards` then counts per device),
//! and reports per-device lanes. `--out PATH` writes a JSON summary.
//!
//! `--families` replaces the corpus with near-duplicate structure families
//! under cache-hostile uniform traffic and serves the pooled side with
//! structure-class inheritance on ([`PoolConfig::with_class_reuse`]); the
//! sequential side stays from-scratch, so the differential grades how well
//! inherited selections track the exact cold path.
//!
//! The binary always verifies that the pooled responses are bit-identical to
//! the sequential replay (selections and result vectors) before printing
//! throughput, and exits non-zero on any mismatch. In the family lane the
//! check is graded instead: bit-identical whenever pooled and sequential
//! agree on the kernel, solver tolerance when inheritance diverged. The pooled-vs-sequential
//! speedup is reported but only *asserted* (>= 2x, the PR acceptance bar)
//! when the machine actually has >= 4 CPUs available and `--assert-speedup`
//! is passed, because a 4-shard pool cannot beat a single thread on a
//! single-core box no matter how good the code is.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use seer_core::engine::SeerEngine;
use seer_core::serving::{PoolConfig, ServingPool, ServingRequest};
use seer_core::training::TrainingConfig;
use seer_gpu::{Fleet, Gpu};
use seer_sparse::collection::{generate, CollectionConfig, SizeScale};
use seer_sparse::traffic::{TrafficConfig, TrafficGenerator, TrafficRequest};
use seer_sparse::{generators, CsrMatrix, Scalar, SplitMix64};

struct Options {
    smoke: bool,
    shards: usize,
    requests: usize,
    assert_speedup: bool,
    /// Number of heterogeneous fleet devices; 0 = classic single device.
    fleet: usize,
    /// Near-duplicate-family lane: cache-hostile traffic over structure
    /// families, served with structure-class inheritance enabled.
    families: bool,
    out: Option<String>,
}

fn parse_options() -> Options {
    let mut options = Options {
        smoke: false,
        shards: 4,
        requests: 8_000,
        assert_speedup: false,
        fleet: 0,
        families: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--assert-speedup" => options.assert_speedup = true,
            "--families" => options.families = true,
            "--shards" => {
                options.shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--shards takes a positive integer");
            }
            "--requests" => {
                options.requests = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests takes a positive integer");
            }
            "--fleet" => {
                options.fleet = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--fleet takes a device count (2..=4)");
            }
            "--out" => {
                options.out = Some(args.next().expect("--out takes a path"));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: loadtest_serving [--smoke] [--shards N] [--requests N] \
                     [--assert-speedup] [--fleet N] [--families] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if options.families && options.fleet > 0 {
        eprintln!("--families and --fleet are mutually exclusive lanes");
        std::process::exit(2);
    }
    if options.smoke {
        options.requests = options.requests.min(1_000);
    }
    options
}

/// One generator shape of the near-duplicate-family corpus.
type FamilyShape = Box<dyn Fn(&mut SplitMix64) -> CsrMatrix>;

/// The near-duplicate-family corpus: every member is a *fresh* sparsity
/// pattern (random column placement — exact caches never hit across
/// members) drawn from one of six generator shapes whose quantized
/// structure signatures are stable, so each shape forms one structure
/// class the engine can inherit selections within.
fn family_corpus(members: usize) -> Vec<Arc<CsrMatrix>> {
    let shapes: Vec<FamilyShape> = vec![
        Box::new(|rng| generators::uniform_row_length(3_000, 8, rng)),
        Box::new(|rng| generators::uniform_row_length(1_500, 24, rng)),
        Box::new(|rng| generators::uniform_random(1_500, 1_500, 0.006, rng)),
        Box::new(|rng| generators::uniform_random(3_000, 3_000, 0.003, rng)),
        Box::new(|rng| generators::tall_skinny(3_000, 500, 6, rng)),
        Box::new(|rng| generators::tall_skinny(6_000, 800, 4, rng)),
    ];
    let mut rng = SplitMix64::new(0xFA417);
    let mut corpus = Vec::with_capacity(shapes.len() * members);
    for shape in &shapes {
        for _ in 0..members {
            corpus.push(Arc::new(shape(&mut rng)));
        }
    }
    corpus
}

/// The first `devices` presets of the reference heterogeneous lineup.
fn build_fleet(devices: usize) -> Fleet {
    let presets = Fleet::reference_presets();
    assert!(
        (2..=presets.len()).contains(&devices),
        "--fleet takes 2..={} devices",
        presets.len()
    );
    Fleet::of_specs(presets.into_iter().take(devices)).expect("presets validate")
}

fn main() {
    let options = parse_options();

    // Deterministic setup: corpus, trained engine, request stream.
    let collection = generate(&CollectionConfig {
        seed: 2024,
        matrices_per_family: 4,
        scale: if options.smoke {
            SizeScale::Tiny
        } else {
            SizeScale::Small
        },
    });
    let (trained, _outcome) =
        SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())
            .expect("training the loadtest models");

    let mut corpus: Vec<Arc<CsrMatrix>> = if options.families {
        // The family lane swaps the golden corpus for near-duplicate
        // families (the trained models still come from the collection).
        family_corpus(if options.smoke { 8 } else { 16 })
    } else {
        collection
            .iter()
            .map(|e| Arc::new(e.matrix.clone()))
            .collect()
    };

    // Fleet mode: a corpus whose slices win on different devices — big
    // bandwidth-bound uniform matrices for the flagships, small skew-heavy
    // ones for the low-overhead devices — under a wide iteration mix.
    let fleet = (options.fleet > 0).then(|| build_fleet(options.fleet));
    if fleet.is_some() {
        let mut rng = SplitMix64::new(0xF1EE7);
        let (rows, density) = if options.smoke {
            (1_500, 0.04)
        } else {
            (4_000, 0.03)
        };
        for _ in 0..3 {
            corpus.push(Arc::new(generators::uniform_random(
                rows, rows, density, &mut rng,
            )));
            corpus.push(Arc::new(generators::skewed_rows(
                300, 1, 150, 0.01, &mut rng,
            )));
        }
    }

    let inputs: Vec<Arc<Vec<Scalar>>> = corpus
        .iter()
        .map(|m| Arc::new(vec![1.0; m.cols()]))
        .collect();
    let traffic = if options.families {
        TrafficConfig::near_duplicate_families(corpus.len(), 0x10AD)
    } else {
        match &fleet {
            Some(_) => TrafficConfig::fleet_mixed(corpus.len(), 0x10AD),
            None => TrafficConfig::skewed(corpus.len(), 0x10AD),
        }
    };
    let stream: Vec<TrafficRequest> = TrafficGenerator::new(&traffic)
        .take(options.requests)
        .collect();
    println!(
        "loadtest: {} requests over {} matrices, {} shards{}{}{}",
        stream.len(),
        corpus.len(),
        options.shards,
        match &fleet {
            Some(fleet) => format!(" per device x {} devices", fleet.len()),
            None => String::new(),
        },
        if options.families {
            " (family lane, class reuse on)"
        } else {
            ""
        },
        if options.smoke { " (smoke)" } else { "" }
    );
    if let Some(fleet) = &fleet {
        print!("{fleet}");
    }

    // Sequential baseline: one engine (fleet-aware in fleet mode), one
    // thread, same stream.
    let engine = match &fleet {
        Some(fleet) => SeerEngine::with_fleet(fleet.clone(), trained.models_handle()),
        None => SeerEngine::new(trained.gpu_handle(), trained.models_handle()),
    };
    let sequential_start = Instant::now();
    let sequential: Vec<_> = stream
        .iter()
        .map(|r| {
            engine.execute(
                &corpus[r.matrix_index],
                &inputs[r.matrix_index],
                r.iterations,
            )
        })
        .collect();
    let sequential_secs = sequential_start.elapsed().as_secs_f64();
    let sequential_rps = stream.len() as f64 / sequential_secs;
    let engine_stats = engine.stats();

    // Pooled run: same models, fresh caches, N shards (per device). The
    // family lane turns structure-class inheritance on pool-side only: the
    // sequential engine stays the from-scratch reference the differential
    // measures inheritance against.
    let pool_config = PoolConfig::with_shards(options.shards).with_class_reuse(options.families);
    let pool = match &fleet {
        Some(fleet) => ServingPool::with_fleet(fleet.clone(), trained.models_handle(), pool_config),
        None => ServingPool::from_engine(&engine, pool_config),
    };
    let pooled_start = Instant::now();
    let tickets = pool.submit_batch(stream.iter().map(|r| {
        ServingRequest::execute(
            Arc::clone(&corpus[r.matrix_index]),
            Arc::clone(&inputs[r.matrix_index]),
            r.iterations,
        )
    }));
    let pooled: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("healthy worker"))
        .collect();
    let pooled_secs = pooled_start.elapsed().as_secs_f64();
    let pooled_rps = stream.len() as f64 / pooled_secs;
    let stats = pool.shutdown();

    // Differential check. Classic lanes demand a bit-identical replay. The
    // family lane serves with inheritance, which is arrival-order-sensitive
    // under concurrency — a shard may decide a class before or after its
    // seed — so the guarantee is graded: whenever pooled and sequential
    // agree on the kernel the result must still be bit-identical, and when
    // they diverge the results must agree to solver tolerance.
    let mut mismatches = 0usize;
    let mut kernel_agreements = 0usize;
    for (index, (seq, pool_response)) in sequential.iter().zip(&pooled).enumerate() {
        let pooled_result = pool_response.result.as_deref();
        let ok = if options.families {
            let kernels_agree = seq.selection.kernel == pool_response.selection.kernel;
            kernel_agreements += usize::from(kernels_agree);
            if kernels_agree {
                pooled_result == Some(seq.result.as_slice())
            } else {
                pooled_result.is_some_and(|got| {
                    got.len() == seq.result.len()
                        && got
                            .iter()
                            .zip(&seq.result)
                            .all(|(a, b)| (a - b).abs() <= 1e-9 * b.abs().max(1.0))
                })
            }
        } else {
            seq.selection == pool_response.selection && pooled_result == Some(seq.result.as_slice())
        };
        if !ok {
            if mismatches == 0 {
                eprintln!(
                    "MISMATCH at request {index}: sequential {:?} vs pooled {:?}",
                    seq.selection, pool_response.selection
                );
            }
            mismatches += 1;
        }
    }

    let aggregated = stats.engine();
    println!("\n                     requests/sec    plan hit rate");
    println!(
        "  sequential (1 thr)   {sequential_rps:>10.0}          {:>5.1}%",
        engine_stats.plan_hit_rate() * 100.0
    );
    println!(
        "  pooled ({} shards)    {pooled_rps:>10.0}          {:>5.1}%",
        stats.shards.len(),
        aggregated.plan_hit_rate() * 100.0
    );
    let speedup = pooled_rps / sequential_rps;
    println!("  speedup              {speedup:>10.2}x");
    println!("\nper-shard: (device / submitted / completed / hits / misses / cached plans)");
    for shard in &stats.shards {
        println!(
            "  shard {}: {} / {:>6} / {:>6} / {:>6} / {:>6} / {:>4}",
            shard.shard,
            shard.device,
            shard.submitted,
            shard.completed,
            shard.engine.plan_hits,
            shard.engine.plan_misses,
            shard.cached_plans
        );
    }
    let lanes = stats.devices();
    if fleet.is_some() {
        println!("\nper-device: (shards / submitted / completed / queue / preparations)");
        for lane in &lanes {
            println!(
                "  {}: {} / {:>6} / {:>6} / {:>3} / {:>5}",
                lane.device,
                lane.shards,
                lane.submitted,
                lane.completed,
                lane.queue_depth(),
                lane.engine.plan_preparations
            );
        }
    }
    println!(
        "\ntotals: {} submitted, {} completed, queue depth {}, {} feature collections, {} fallbacks",
        stats.submitted(),
        stats.completed(),
        stats.queue_depth(),
        aggregated.feature_collections,
        aggregated.misprediction_fallbacks
    );

    // Invariants the driver relies on, checked on every run including smoke.
    assert_eq!(mismatches, 0, "pooled results diverged from sequential");
    assert_eq!(stats.completed(), stream.len() as u64);
    assert_eq!(stats.queue_depth(), 0);
    assert_eq!(
        aggregated.selections(),
        stream.len() as u64,
        "every request makes exactly one selection"
    );
    // Per-device lanes partition the pool exactly.
    assert_eq!(
        lanes.iter().map(|l| l.completed).sum::<u64>(),
        stats.completed()
    );
    if let Some(fleet) = &fleet {
        assert_eq!(lanes.len(), fleet.len());
        let active = lanes.iter().filter(|lane| lane.completed > 0).count();
        assert!(
            active > 1,
            "heterogeneous traffic must exercise more than one device, got {active}"
        );
    }
    let kernel_agreement = kernel_agreements as f64 / stream.len().max(1) as f64;
    if options.families {
        println!(
            "\nfamily lane: {} inherited selections, {} class hits, kernel agreement \
             {:.1}% vs the from-scratch sequential replay",
            aggregated.inherited_selections,
            aggregated.class_hits,
            100.0 * kernel_agreement
        );
        assert!(
            aggregated.inherited_selections > 0,
            "family traffic with class reuse on must inherit at least one selection"
        );
        println!(
            "differential check: OK ({} requests, bit-identical on kernel agreement, \
             solver tolerance otherwise)",
            stream.len()
        );
    } else {
        println!(
            "\ndifferential check: OK ({} requests bit-identical)",
            stream.len()
        );
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if options.assert_speedup {
        if cpus >= 4 {
            assert!(
                speedup >= 2.0,
                "expected >= 2x pooled speedup on {cpus} CPUs, measured {speedup:.2}x"
            );
            println!("speedup check: OK ({speedup:.2}x on {cpus} CPUs)");
        } else {
            println!("speedup check: skipped ({cpus} CPU(s) available, need >= 4)");
        }
    }

    if let Some(path) = &options.out {
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"loadtest_serving\",");
        let _ = writeln!(json, "  \"smoke\": {},", options.smoke);
        let _ = writeln!(json, "  \"requests\": {},", stream.len());
        let _ = writeln!(json, "  \"corpus_matrices\": {},", corpus.len());
        let _ = writeln!(json, "  \"shards\": {},", stats.shards.len());
        let _ = writeln!(
            json,
            "  \"fleet_devices\": {},",
            fleet.as_ref().map_or(1, Fleet::len)
        );
        let _ = writeln!(json, "  \"families\": {},", options.families);
        if options.families {
            let _ = writeln!(
                json,
                "  \"inherited_selections\": {},",
                aggregated.inherited_selections
            );
            let _ = writeln!(json, "  \"class_hits\": {},", aggregated.class_hits);
            let _ = writeln!(json, "  \"kernel_agreement\": {kernel_agreement:.4},");
        }
        let _ = writeln!(json, "  \"sequential_rps\": {sequential_rps:.0},");
        let _ = writeln!(json, "  \"pooled_rps\": {pooled_rps:.0},");
        let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
        let _ = writeln!(
            json,
            "  \"plan_hit_rate\": {:.4},",
            aggregated.plan_hit_rate()
        );
        let _ = writeln!(
            json,
            "  \"plan_preparations\": {},",
            aggregated.plan_preparations
        );
        let _ = writeln!(json, "  \"devices\": [");
        for (index, lane) in lanes.iter().enumerate() {
            let _ = writeln!(json, "    {{");
            let _ = writeln!(json, "      \"device\": \"{}\",", lane.device);
            let _ = writeln!(
                json,
                "      \"name\": \"{}\",",
                fleet.as_ref().map_or_else(
                    || engine.gpu().spec().name.clone(),
                    |fleet| fleet.device(lane.device).name().to_string()
                )
            );
            let _ = writeln!(json, "      \"shards\": {},", lane.shards);
            let _ = writeln!(json, "      \"submitted\": {},", lane.submitted);
            let _ = writeln!(json, "      \"completed\": {},", lane.completed);
            let _ = writeln!(json, "      \"plan_hits\": {},", lane.engine.plan_hits);
            let _ = writeln!(json, "      \"plan_misses\": {},", lane.engine.plan_misses);
            let _ = writeln!(
                json,
                "      \"plan_preparations\": {}",
                lane.engine.plan_preparations
            );
            let _ = writeln!(
                json,
                "    }}{}",
                if index + 1 < lanes.len() { "," } else { "" }
            );
        }
        let _ = writeln!(json, "  ],");
        let _ = writeln!(json, "  \"differential_ok\": true");
        json.push_str("}\n");
        std::fs::write(path, &json).expect("writing the loadtest report");
        println!("wrote {path}");
    }
}
