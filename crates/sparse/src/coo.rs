//! Coordinate (COO) format sparse matrices.

use crate::{CsrMatrix, Scalar, SparseError};

/// A sparse matrix stored as `(row, col, value)` triplets.
///
/// COO is the natural assembly and interchange format: MatrixMarket files are
/// COO on disk, and the synthetic generators in [`crate::generators`] build
/// matrices by pushing triplets. The COO wavefront-mapped SpMV kernel in the
/// case study (Table II) also consumes this format directly.
///
/// Duplicate entries are allowed and are summed when converting to CSR, the
/// same convention MatrixMarket and SuiteSparse use.
///
/// # Example
///
/// ```
/// use seer_sparse::{CooMatrix, CsrMatrix};
///
/// # fn main() -> Result<(), seer_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0)?;
/// coo.push(1, 1, 2.0)?;
/// coo.push(1, 1, 3.0)?; // duplicate, summed on conversion
/// let csr: CsrMatrix = coo.to_csr();
/// assert_eq!(csr.spmv(&[1.0, 1.0]), vec![1.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<Scalar>,
}

impl CooMatrix {
    /// Creates an empty `rows x cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_indices: Vec::new(),
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity reserved for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        Self {
            rows,
            cols,
            row_indices: Vec::with_capacity(nnz),
            col_indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Builds a COO matrix from parallel triplet arrays.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] if the arrays differ in length
    /// and [`SparseError::IndexOutOfBounds`] if any coordinate is outside the
    /// declared shape.
    pub fn try_from_triplets(
        rows: usize,
        cols: usize,
        row_indices: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<Scalar>,
    ) -> Result<Self, SparseError> {
        if row_indices.len() != col_indices.len() {
            return Err(SparseError::LengthMismatch {
                left: "row_indices",
                left_len: row_indices.len(),
                right: "col_indices",
                right_len: col_indices.len(),
            });
        }
        if row_indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                left: "row_indices",
                left_len: row_indices.len(),
                right: "values",
                right_len: values.len(),
            });
        }
        for (&r, &c) in row_indices.iter().zip(&col_indices) {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        })
    }

    /// Appends one `(row, col, value)` entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the coordinate lies
    /// outside the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: Scalar) -> Result<(), SparseError> {
        if row >= self.rows || col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        self.row_indices.push(row);
        self.col_indices.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row indices of the stored triplets.
    pub fn row_indices(&self) -> &[usize] {
        &self.row_indices
    }

    /// Column indices of the stored triplets.
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// Values of the stored triplets.
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Scalar)> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Reference sequential SpMV: `y = A * x` over the raw triplets.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Scalar]) -> Vec<Scalar> {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        let mut y = vec![0.0; self.rows];
        for (r, c, v) in self.iter() {
            y[r] += v * x[c];
        }
        y
    }

    /// Converts to CSR, sorting entries row-major and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort on rows keeps conversion O(nnz + rows).
        let mut counts = vec![0usize; self.rows + 1];
        for &r in &self.row_indices {
            counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            counts[i + 1] += counts[i];
        }
        let mut next = counts.clone();
        let nnz = self.nnz();
        let mut cols = vec![0usize; nnz];
        let mut vals = vec![0.0; nnz];
        for (r, c, v) in self.iter() {
            let slot = next[r];
            cols[slot] = c;
            vals[slot] = v;
            next[r] += 1;
        }
        // Sort within each row by column, then merge duplicates.
        let mut merged_offsets = Vec::with_capacity(self.rows + 1);
        let mut merged_cols = Vec::with_capacity(nnz);
        let mut merged_vals = Vec::with_capacity(nnz);
        merged_offsets.push(0);
        for row in 0..self.rows {
            let span = counts[row]..counts[row + 1];
            let mut entries: Vec<(usize, Scalar)> = cols[span.clone()]
                .iter()
                .copied()
                .zip(vals[span].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            for (c, v) in entries {
                if merged_cols.len() > *merged_offsets.last().unwrap()
                    && *merged_cols.last().unwrap() == c
                {
                    *merged_vals.last_mut().unwrap() += v;
                } else {
                    merged_cols.push(c);
                    merged_vals.push(v);
                }
            }
            merged_offsets.push(merged_cols.len());
        }
        CsrMatrix::try_new(
            self.rows,
            self.cols,
            merged_offsets,
            merged_cols,
            merged_vals,
        )
        .expect("coo entries were validated on insertion")
    }

    /// Total bytes occupied by the triplet representation.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.row_indices.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }
}

impl From<CsrMatrix> for CooMatrix {
    fn from(csr: CsrMatrix) -> Self {
        csr.to_coo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(1, 2, 3.0).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 2.0), (1, 2, 3.0)]);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn push_out_of_bounds_is_error() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert_eq!(coo.nnz(), 0);
    }

    #[test]
    fn try_from_triplets_validates() {
        let err = CooMatrix::try_from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::LengthMismatch { .. }));
        let err = CooMatrix::try_from_triplets(2, 2, vec![0], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
        let ok = CooMatrix::try_from_triplets(2, 2, vec![0, 1], vec![1, 0], vec![1.0, 2.0]);
        assert!(ok.is_ok());
    }

    #[test]
    fn to_csr_sorts_rows_and_columns() {
        let coo = CooMatrix::try_from_triplets(
            3,
            3,
            vec![2, 0, 1, 0],
            vec![1, 2, 0, 0],
            vec![5.0, 3.0, 4.0, 1.0],
        )
        .unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.row_offsets(), &[0, 2, 3, 4]);
        assert_eq!(csr.col_indices(), &[0, 2, 0, 1]);
        assert_eq!(csr.values(), &[1.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn to_csr_sums_duplicates() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.values(), &[4.0]);
    }

    #[test]
    fn spmv_agrees_with_csr() {
        let coo = CooMatrix::try_from_triplets(
            3,
            4,
            vec![0, 0, 1, 2, 2],
            vec![0, 3, 1, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let x = vec![1.0, -1.0, 2.0, 0.5];
        assert_eq!(coo.spmv(&x), coo.to_csr().spmv(&x));
    }

    #[test]
    fn csr_coo_round_trip() {
        let csr = CsrMatrix::try_new(2, 2, vec![0, 1, 2], vec![1, 0], vec![7.0, 8.0]).unwrap();
        let coo: CooMatrix = csr.clone().into();
        let back: CsrMatrix = coo.into();
        assert_eq!(csr, back);
    }

    #[test]
    fn empty_matrix_conversion() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 3);
    }
}
