//! A minimal dense matrix used as a correctness reference in tests.

use crate::{CsrMatrix, Scalar};

/// A dense row-major matrix.
///
/// Only intended for small test inputs and for cross-checking the sparse
/// kernels; none of the performance-model code paths use it.
///
/// # Example
///
/// ```
/// use seer_sparse::DenseMatrix;
///
/// let mut m = DenseMatrix::zeros(2, 2);
/// *m.get_mut(0, 1) = 3.0;
/// assert_eq!(m.get(0, 1), 3.0);
/// assert_eq!(m.spmv(&[0.0, 2.0]), vec![6.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Scalar>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Scalar {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Returns a mutable reference to the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut Scalar {
        assert!(
            row < self.rows && col < self.cols,
            "dense index out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }

    /// Dense matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Scalar]) -> Vec<Scalar> {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect()
    }

    /// Converts to CSR, dropping explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut offsets = Vec::with_capacity(self.rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        offsets.push(0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let v = self.get(r, c);
                if v != 0.0 {
                    cols.push(c);
                    vals.push(v);
                }
            }
            offsets.push(cols.len());
        }
        CsrMatrix::try_new(self.rows, self.cols, offsets, cols, vals)
            .expect("dense conversion produces valid csr")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = DenseMatrix::zeros(3, 2);
        *m.get_mut(2, 1) = 4.5;
        assert_eq!(m.get(2, 1), 4.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn spmv_matches_manual() {
        let mut m = DenseMatrix::zeros(2, 3);
        *m.get_mut(0, 0) = 1.0;
        *m.get_mut(0, 2) = 2.0;
        *m.get_mut(1, 1) = 3.0;
        assert_eq!(m.spmv(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    fn csr_round_trip_spmv() {
        let mut m = DenseMatrix::zeros(3, 3);
        *m.get_mut(0, 1) = 1.0;
        *m.get_mut(2, 2) = -2.0;
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 2);
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(csr.spmv(&x), m.spmv(&x));
    }

    #[test]
    #[should_panic(expected = "dense index out of bounds")]
    fn out_of_bounds_get_panics() {
        DenseMatrix::zeros(1, 1).get(1, 0);
    }
}
