//! ELLPACK (ELL) format sparse matrices.

use crate::{CsrMatrix, Scalar, SparseError};

/// A sparse matrix in ELLPACK format.
///
/// ELL pads every row to the same width `k = max_row_len` and stores column
/// indices and values in two dense `rows x k` arrays (row-major here; a real
/// GPU library would transpose for coalescing, which the memory model in
/// `seer-gpu` accounts for separately). Padding slots hold a sentinel column
/// and a zero value.
///
/// ELL is extremely regular — the ELL thread-mapped kernel in the case study
/// wins on matrices whose rows are uniformly sized (e.g. the G3_circuit
/// example in Fig. 7 of the paper) — but its footprint explodes when a single
/// long row forces a huge padding width, which is exactly the trade-off the
/// Seer predictor has to learn.
///
/// # Example
///
/// ```
/// use seer_sparse::{CsrMatrix, EllMatrix};
///
/// # fn main() -> Result<(), seer_sparse::SparseError> {
/// let csr = CsrMatrix::try_new(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1.0, 2.0, 3.0])?;
/// let ell = EllMatrix::from_csr(&csr);
/// assert_eq!(ell.width(), 2);
/// assert_eq!(ell.spmv(&[1.0, 1.0]), vec![1.0, 5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EllMatrix {
    rows: usize,
    cols: usize,
    width: usize,
    nnz: usize,
    /// `rows * width` column indices; padding slots hold `usize::MAX`.
    col_indices: Vec<usize>,
    /// `rows * width` values; padding slots hold `0.0`.
    values: Vec<Scalar>,
}

impl EllMatrix {
    /// Sentinel column index marking a padding slot.
    pub const PAD: usize = usize::MAX;

    /// Converts a CSR matrix to ELL, padding all rows to the maximum row length.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let rows = csr.rows();
        let cols = csr.cols();
        let width = csr.max_row_len();
        let mut col_indices = vec![Self::PAD; rows * width];
        let mut values = vec![0.0; rows * width];
        for row in 0..rows {
            let (rcols, rvals) = csr.row(row);
            for (slot, (&c, &v)) in rcols.iter().zip(rvals).enumerate() {
                col_indices[row * width + slot] = c;
                values[row * width + slot] = v;
            }
        }
        Self {
            rows,
            cols,
            width,
            nnz: csr.nnz(),
            col_indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Padded row width (the maximum row length of the source matrix).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of non-padding entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of stored slots including padding (`rows * width`).
    pub fn padded_len(&self) -> usize {
        self.rows * self.width
    }

    /// Fraction of stored slots that are padding, in `[0, 1]`.
    ///
    /// A high padding ratio is the signature of a skewed matrix on which the
    /// ELL kernel wastes both memory bandwidth and SIMD lanes.
    pub fn padding_ratio(&self) -> f64 {
        if self.padded_len() == 0 {
            return 0.0;
        }
        1.0 - self.nnz as f64 / self.padded_len() as f64
    }

    /// Returns the `(column, value)` stored at `(row, slot)`, where
    /// `slot < self.width()`. Padding slots return `(EllMatrix::PAD, 0.0)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows` or `slot >= width`.
    pub fn slot(&self, row: usize, slot: usize) -> (usize, Scalar) {
        assert!(
            row < self.rows && slot < self.width,
            "slot index out of range"
        );
        let idx = row * self.width + slot;
        (self.col_indices[idx], self.values[idx])
    }

    /// Reference sequential SpMV over the padded representation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Scalar]) -> Vec<Scalar> {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        let mut y = vec![0.0; self.rows];
        for (row, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for slot in 0..self.width {
                let idx = row * self.width + slot;
                let c = self.col_indices[idx];
                if c != Self::PAD {
                    acc += self.values[idx] * x[c];
                }
            }
            *out = acc;
        }
        y
    }

    /// Checked variant of [`EllMatrix::spmv`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn try_spmv(&self, x: &[Scalar]) -> Result<Vec<Scalar>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        Ok(self.spmv(x))
    }

    /// Converts back to CSR, dropping the padding.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut offsets = Vec::with_capacity(self.rows + 1);
        let mut cols = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        offsets.push(0);
        for row in 0..self.rows {
            for slot in 0..self.width {
                let idx = row * self.width + slot;
                if self.col_indices[idx] != Self::PAD {
                    cols.push(self.col_indices[idx]);
                    vals.push(self.values[idx]);
                }
            }
            offsets.push(cols.len());
        }
        CsrMatrix::try_new(self.rows, self.cols, offsets, cols, vals)
            .expect("ell slots originate from a valid csr matrix")
    }

    /// Total bytes occupied by the padded representation.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }
}

impl From<&CsrMatrix> for EllMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        EllMatrix::from_csr(csr)
    }
}

/// Column-major ("slot-major") padded ELL storage, the device-side layout the
/// ELL thread-mapped kernel actually streams.
///
/// Where [`EllMatrix`] stores its padded arrays row-major (slot `s` of row `r`
/// at `r * width + s`), the slab transposes them: slot `s` of row `r` lives at
/// `s * rows + r`, so walking one *slot* across all rows is a contiguous
/// stream — exactly the coalesced access the GPU kernel relies on, and the
/// layout a prepared execution plan wants to materialize once and replay.
///
/// [`EllSlab::spmv_into`] iterates slot-major but accumulates into `y[row]`,
/// so each row's partial sums are still added in ascending slot order — the
/// CSR row order — making the result bit-identical to
/// [`CsrMatrix::spmv_into`].
#[derive(Debug, Clone, PartialEq)]
pub struct EllSlab {
    rows: usize,
    cols: usize,
    width: usize,
    nnz: usize,
    /// `width * rows` column indices, slot-major; padding slots hold
    /// [`EllMatrix::PAD`].
    col_indices: Vec<usize>,
    /// `width * rows` values, slot-major; padding slots hold `0.0`.
    values: Vec<Scalar>,
}

impl EllSlab {
    /// Builds the column-major slab from a CSR matrix, padding every row to
    /// the maximum row length.
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        Self::with_width(csr, csr.max_row_len())
    }

    /// Builds the slab with an explicitly provided padded width, for callers
    /// that already hold the matrix's profile and must not trigger the memo.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the longest row of `csr`.
    pub fn with_width(csr: &CsrMatrix, width: usize) -> Self {
        let rows = csr.rows();
        let cols = csr.cols();
        let mut col_indices = vec![EllMatrix::PAD; rows * width];
        let mut values = vec![0.0; rows * width];
        for row in 0..rows {
            let (rcols, rvals) = csr.row(row);
            assert!(
                rcols.len() <= width,
                "row {row} has {} entries but the slab width is {width}",
                rcols.len()
            );
            for (slot, (&c, &v)) in rcols.iter().zip(rvals).enumerate() {
                col_indices[slot * rows + row] = c;
                values[slot * rows + row] = v;
            }
        }
        Self {
            rows,
            cols,
            width,
            nnz: csr.nnz(),
            col_indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Padded row width (the maximum row length of the source matrix).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of non-padding entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Heap bytes of the padded slot-major arrays.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }

    /// SpMV over the slab into a caller-provided buffer, allocation-free.
    ///
    /// The slot-major walk visits every row once per slot, so `y[row]`
    /// receives its terms in ascending slot order — the same per-row
    /// summation order as the CSR reference, hence bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        assert_eq!(
            y.len(),
            self.rows,
            "output vector length must equal matrix rows"
        );
        y.fill(0.0);
        for slot in 0..self.width {
            let span = slot * self.rows..(slot + 1) * self.rows;
            for ((out, &c), &v) in y
                .iter_mut()
                .zip(&self.col_indices[span.clone()])
                .zip(&self.values[span])
            {
                if c != EllMatrix::PAD {
                    *out += v * x[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed() -> CsrMatrix {
        // Row 0 has 4 entries, rows 1..3 have one each: padding ratio 9/16... wait 3 rows.
        CsrMatrix::try_new(
            3,
            5,
            vec![0, 4, 5, 6],
            vec![0, 1, 2, 3, 4, 0],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn from_csr_pads_to_max_row() {
        let ell = EllMatrix::from_csr(&skewed());
        assert_eq!(ell.width(), 4);
        assert_eq!(ell.padded_len(), 12);
        assert_eq!(ell.nnz(), 6);
        let ratio = ell.padding_ratio();
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spmv_matches_csr() {
        let csr = skewed();
        let ell = EllMatrix::from_csr(&csr);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(ell.spmv(&x), csr.spmv(&x));
    }

    #[test]
    fn round_trip_to_csr() {
        let csr = skewed();
        let back = EllMatrix::from_csr(&csr).to_csr();
        assert_eq!(csr, back);
    }

    #[test]
    fn slot_access_reports_padding() {
        let ell = EllMatrix::from_csr(&skewed());
        let (c, v) = ell.slot(1, 0);
        assert_eq!((c, v), (4, 5.0));
        let (c, v) = ell.slot(1, 3);
        assert_eq!(c, EllMatrix::PAD);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn empty_matrix_has_zero_padding_ratio() {
        let csr = CsrMatrix::zeros(4, 4);
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.width(), 0);
        assert_eq!(ell.padding_ratio(), 0.0);
        assert_eq!(ell.spmv(&[0.0; 4]), vec![0.0; 4]);
    }

    #[test]
    fn try_spmv_rejects_bad_dimension() {
        let ell = EllMatrix::from_csr(&skewed());
        assert!(ell.try_spmv(&[1.0]).is_err());
    }

    #[test]
    fn uniform_matrix_has_no_padding() {
        let csr = CsrMatrix::identity(8);
        let ell = EllMatrix::from_csr(&csr);
        assert_eq!(ell.padding_ratio(), 0.0);
        assert_eq!(ell.width(), 1);
    }

    #[test]
    fn footprint_grows_with_padding() {
        let uniform = EllMatrix::from_csr(&CsrMatrix::identity(16));
        let skew = EllMatrix::from_csr(&skewed());
        assert!(skew.padded_len() > skew.nnz());
        assert_eq!(uniform.padded_len(), uniform.nnz());
    }

    #[test]
    fn slab_spmv_is_bit_identical_to_csr() {
        let csr = skewed();
        let slab = EllSlab::from_csr(&csr);
        assert_eq!(slab.width(), 4);
        assert_eq!(slab.nnz(), 6);
        let x = vec![0.5, -2.0, 3.25, 4.0, -0.125];
        let mut y = vec![f64::NAN; csr.rows()];
        slab.spmv_into(&x, &mut y);
        let reference = csr.spmv(&x);
        // Bit-identical, not merely close: same per-row summation order.
        for (a, b) in y.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn slab_transposes_the_row_major_layout() {
        let csr = skewed();
        let slab = EllSlab::from_csr(&csr);
        let ell = EllMatrix::from_csr(&csr);
        // Same logical slots, transposed placement.
        for row in 0..csr.rows() {
            for slot in 0..slab.width() {
                let (c, v) = ell.slot(row, slot);
                assert_eq!(slab.col_indices[slot * slab.rows() + row], c);
                assert_eq!(slab.values[slot * slab.rows() + row], v);
            }
        }
        assert_eq!(slab.memory_footprint_bytes(), ell.memory_footprint_bytes());
    }

    #[test]
    fn slab_handles_empty_and_degenerate_shapes() {
        for csr in [
            CsrMatrix::zeros(0, 0),
            CsrMatrix::zeros(4, 4),
            CsrMatrix::identity(1),
        ] {
            let slab = EllSlab::from_csr(&csr);
            let x = vec![1.0; csr.cols()];
            let mut y = vec![f64::NAN; csr.rows()];
            slab.spmv_into(&x, &mut y);
            assert_eq!(y, csr.spmv(&x));
        }
    }
}
