//! Error type shared by the sparse-matrix constructors and I/O routines.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing, converting or parsing sparse matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// A coordinate `(row, col)` lies outside the declared matrix shape.
    IndexOutOfBounds {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
        /// Number of rows in the matrix.
        rows: usize,
        /// Number of columns in the matrix.
        cols: usize,
    },
    /// The CSR row-pointer array is malformed (wrong length, non-monotone, or
    /// not ending at `nnz`).
    InvalidRowPointers {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// Two parallel arrays (e.g. column indices and values) have different lengths.
    LengthMismatch {
        /// Name of the first array.
        left: &'static str,
        /// Length of the first array.
        left_len: usize,
        /// Name of the second array.
        right: &'static str,
        /// Length of the second array.
        right_len: usize,
    },
    /// A vector passed to an SpMV-style routine has the wrong dimension.
    DimensionMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        found: usize,
    },
    /// A MatrixMarket file could not be parsed.
    Parse {
        /// 1-based line number where parsing failed (0 when unknown).
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// An I/O error occurred while reading or writing a matrix file.
    Io(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {rows}x{cols} matrix shape"
            ),
            SparseError::InvalidRowPointers { reason } => {
                write!(f, "invalid CSR row pointers: {reason}")
            }
            SparseError::LengthMismatch {
                left,
                left_len,
                right,
                right_len,
            } => write!(
                f,
                "length mismatch: {left} has {left_len} elements but {right} has {right_len}"
            ),
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SparseError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for SparseError {}

impl From<std::io::Error> for SparseError {
    fn from(err: std::io::Error) -> Self {
        SparseError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_shape() {
        let err = SparseError::IndexOutOfBounds {
            row: 3,
            col: 9,
            rows: 2,
            cols: 2,
        };
        let msg = err.to_string();
        assert!(msg.contains("(3, 9)"));
        assert!(msg.contains("2x2"));
    }

    #[test]
    fn display_is_lowercase_without_trailing_period() {
        let errors: Vec<SparseError> = vec![
            SparseError::InvalidRowPointers {
                reason: "not monotone".into(),
            },
            SparseError::DimensionMismatch {
                expected: 4,
                found: 2,
            },
            SparseError::Io("boom".into()),
            SparseError::Parse {
                line: 7,
                reason: "bad header".into(),
            },
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.ends_with('.'), "{msg}");
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.mtx");
        let err = SparseError::from(io);
        assert!(matches!(err, SparseError::Io(_)));
    }
}
