//! Synthetic sparse-matrix generators.
//!
//! The SuiteSparse Matrix Collection spans a wide range of structural
//! families — FEM stencils, circuit matrices, optimisation KKT systems,
//! social/web graphs, structural-mechanics meshes — and the whole point of
//! the Seer predictor is that *different families favour different kernels*.
//! These generators produce deterministic members of each family so the
//! collection in [`crate::collection`] exhibits the same kernel-selection
//! diversity (Fig. 1 of the paper) without access to the real dataset.
//!
//! Every generator takes an explicit [`SplitMix64`] so the data is fully
//! reproducible.

use crate::{CooMatrix, CsrMatrix, Scalar, SplitMix64};

/// Generates an `rows x cols` matrix where each entry is present independently
/// with probability `density`.
///
/// Row lengths follow a binomial distribution, so the result is mildly
/// irregular: a good "average case" input.
pub fn uniform_random(rows: usize, cols: usize, density: f64, rng: &mut SplitMix64) -> CsrMatrix {
    let density = density.clamp(0.0, 1.0);
    let expected_per_row = (density * cols as f64).max(0.0);
    let mut value_rng = rng.split(0x1);
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    offsets.push(0);
    for _ in 0..rows {
        // Sample the row length from a Poisson-like approximation (normal
        // around the mean) and then choose distinct columns.
        let jitter = rng.next_gaussian() * expected_per_row.sqrt();
        let len = ((expected_per_row + jitter).round().max(0.0) as usize).min(cols);
        push_random_row(
            len,
            cols,
            rng,
            &mut value_rng,
            &mut col_indices,
            &mut values,
        );
        offsets.push(col_indices.len());
    }
    CsrMatrix::try_new(rows, cols, offsets, col_indices, values)
        .expect("generator emits valid structure")
}

/// Generates a diagonal matrix with random nonzero diagonal values.
pub fn diagonal(n: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(nonzero_value(rng));
    }
    CsrMatrix::try_new(n, n, (0..=n).collect(), (0..n).collect(), values)
        .expect("diagonal structure is valid")
}

/// Generates a banded matrix with `half_bandwidth` sub- and super-diagonals.
///
/// Row lengths are almost perfectly uniform (edge rows are shorter), which is
/// the regime where thread-mapped and ELL kernels shine.
pub fn banded(n: usize, half_bandwidth: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for row in 0..n {
        let lo = row.saturating_sub(half_bandwidth);
        let hi = (row + half_bandwidth + 1).min(n);
        for c in lo..hi {
            cols.push(c);
            vals.push(nonzero_value(rng));
        }
        offsets.push(cols.len());
    }
    CsrMatrix::try_new(n, n, offsets, cols, vals).expect("banded structure is valid")
}

/// Generates the classic 5-point Laplacian stencil on a `grid x grid` mesh
/// (matrix dimension `grid^2`). Representative of 2-D FEM/finite-difference
/// matrices such as G3_circuit-class problems.
pub fn stencil_2d(grid: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let n = grid * grid;
    let mut coo = CooMatrix::with_capacity(n, n, 5 * n);
    for i in 0..grid {
        for j in 0..grid {
            let row = i * grid + j;
            coo.push(row, row, 4.0 + 0.01 * rng.next_f64())
                .expect("in bounds");
            if i > 0 {
                coo.push(row, row - grid, -1.0).expect("in bounds");
            }
            if i + 1 < grid {
                coo.push(row, row + grid, -1.0).expect("in bounds");
            }
            if j > 0 {
                coo.push(row, row - 1, -1.0).expect("in bounds");
            }
            if j + 1 < grid {
                coo.push(row, row + 1, -1.0).expect("in bounds");
            }
        }
    }
    coo.to_csr()
}

/// Generates the 7-point Laplacian stencil on a `grid^3` mesh, representative
/// of 3-D PDE discretisations (PWTK/CurlCurl-class structural matrices).
pub fn stencil_3d(grid: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let n = grid * grid * grid;
    let idx = |i: usize, j: usize, k: usize| (i * grid + j) * grid + k;
    let mut coo = CooMatrix::with_capacity(n, n, 7 * n);
    for i in 0..grid {
        for j in 0..grid {
            for k in 0..grid {
                let row = idx(i, j, k);
                coo.push(row, row, 6.0 + 0.01 * rng.next_f64())
                    .expect("in bounds");
                if i > 0 {
                    coo.push(row, idx(i - 1, j, k), -1.0).expect("in bounds");
                }
                if i + 1 < grid {
                    coo.push(row, idx(i + 1, j, k), -1.0).expect("in bounds");
                }
                if j > 0 {
                    coo.push(row, idx(i, j - 1, k), -1.0).expect("in bounds");
                }
                if j + 1 < grid {
                    coo.push(row, idx(i, j + 1, k), -1.0).expect("in bounds");
                }
                if k > 0 {
                    coo.push(row, idx(i, j, k - 1), -1.0).expect("in bounds");
                }
                if k + 1 < grid {
                    coo.push(row, idx(i, j, k + 1), -1.0).expect("in bounds");
                }
            }
        }
    }
    coo.to_csr()
}

/// Generates a scale-free graph adjacency matrix whose out-degrees follow a
/// truncated power law with exponent `alpha`.
///
/// This is the archetypal irregular input: most rows are tiny, a handful are
/// enormous, and row-mapped kernels suffer badly from the imbalance.
pub fn power_law(n: usize, alpha: f64, max_degree: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let max_degree = max_degree.min(n.max(1));
    let mut value_rng = rng.split(0x2);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for _ in 0..n {
        let len = rng.next_power_law(alpha, max_degree).min(n);
        push_random_row(len, n, rng, &mut value_rng, &mut cols, &mut vals);
        offsets.push(cols.len());
    }
    CsrMatrix::try_new(n, n, offsets, cols, vals).expect("power-law structure is valid")
}

/// Generates a block-diagonal matrix with `blocks` dense `block_size^2` blocks.
/// Representative of multi-physics / KKT saddle-point systems (nlpkkt-class).
pub fn block_diagonal(blocks: usize, block_size: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let n = blocks * block_size;
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for row in 0..n {
        let block = row / block_size;
        let start = block * block_size;
        for c in start..start + block_size {
            cols.push(c);
            vals.push(nonzero_value(rng));
        }
        offsets.push(cols.len());
    }
    CsrMatrix::try_new(n, n, offsets, cols, vals).expect("block structure is valid")
}

/// Generates a matrix where most rows have `base_len` entries but a fraction
/// `heavy_fraction` of rows have `heavy_len` entries.
///
/// This "few very long rows" shape is the worst case for thread-mapped
/// schedules and the motivating case for CSR-Adaptive binning.
pub fn skewed_rows(
    n: usize,
    base_len: usize,
    heavy_len: usize,
    heavy_fraction: f64,
    rng: &mut SplitMix64,
) -> CsrMatrix {
    let mut value_rng = rng.split(0x3);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for _ in 0..n {
        let len = if rng.next_f64() < heavy_fraction {
            heavy_len
        } else {
            base_len
        };
        push_random_row(len.min(n), n, rng, &mut value_rng, &mut cols, &mut vals);
        offsets.push(cols.len());
    }
    CsrMatrix::try_new(n, n, offsets, cols, vals).expect("skewed structure is valid")
}

/// Generates a matrix with exactly `row_len` entries in every row, placed at
/// random columns. The ideal ELL input.
pub fn uniform_row_length(n: usize, row_len: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let mut value_rng = rng.split(0x4);
    let row_len = row_len.min(n);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for _ in 0..n {
        push_random_row(row_len, n, rng, &mut value_rng, &mut cols, &mut vals);
        offsets.push(cols.len());
    }
    CsrMatrix::try_new(n, n, offsets, cols, vals).expect("uniform structure is valid")
}

/// Generates a tall rectangular matrix (`rows >> cols`) with short rows,
/// representative of least-squares / tall-skinny problems.
pub fn tall_skinny(rows: usize, cols: usize, row_len: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let mut value_rng = rng.split(0x5);
    let row_len = row_len.min(cols);
    let mut offsets = Vec::with_capacity(rows + 1);
    let mut col_indices = Vec::new();
    let mut values = Vec::new();
    offsets.push(0);
    for _ in 0..rows {
        push_random_row(
            row_len,
            cols,
            rng,
            &mut value_rng,
            &mut col_indices,
            &mut values,
        );
        offsets.push(col_indices.len());
    }
    CsrMatrix::try_new(rows, cols, offsets, col_indices, values)
        .expect("tall-skinny structure is valid")
}

/// Generates a matrix combining a banded core with a power-law overlay, i.e.
/// a mesh with a few global coupling rows. Hard for any single schedule.
pub fn hybrid_mesh_graph(n: usize, half_bandwidth: usize, rng: &mut SplitMix64) -> CsrMatrix {
    let core = banded(n, half_bandwidth, rng);
    let overlay = power_law(n, 2.0, (n / 8).max(2), rng);
    let mut coo = CooMatrix::with_capacity(n, n, core.nnz() + overlay.nnz());
    for (r, c, v) in core.iter().chain(overlay.iter()) {
        coo.push(r, c, v).expect("both operands are n x n");
    }
    coo.to_csr()
}

/// Pushes `len` distinct random column indices (sorted) and values into the
/// CSR assembly buffers.
fn push_random_row(
    len: usize,
    cols: usize,
    rng: &mut SplitMix64,
    value_rng: &mut SplitMix64,
    col_buf: &mut Vec<usize>,
    val_buf: &mut Vec<Scalar>,
) {
    let start = col_buf.len();
    if len == 0 || cols == 0 {
        return;
    }
    if len * 4 >= cols {
        // Dense-ish row: reservoir-style selection over all columns.
        let mut chosen: Vec<usize> = (0..cols).collect();
        rng.shuffle(&mut chosen);
        chosen.truncate(len);
        chosen.sort_unstable();
        for c in chosen {
            col_buf.push(c);
            val_buf.push(nonzero_value(value_rng));
        }
    } else {
        // Sparse row: rejection sampling of distinct columns.
        let mut picked = std::collections::BTreeSet::new();
        while picked.len() < len {
            picked.insert(rng.next_below(cols));
        }
        for c in picked {
            col_buf.push(c);
            val_buf.push(nonzero_value(value_rng));
        }
    }
    debug_assert!(col_buf[start..].windows(2).all(|w| w[0] < w[1]));
}

/// Draws a value bounded away from zero so generated entries never vanish.
fn nonzero_value(rng: &mut SplitMix64) -> Scalar {
    let v = rng.next_f64_range(0.1, 1.0);
    if rng.next_u64() & 1 == 0 {
        v
    } else {
        -v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowStats;

    fn rng() -> SplitMix64 {
        SplitMix64::new(0xC0FFEE)
    }

    #[test]
    fn uniform_random_has_expected_density() {
        let m = uniform_random(500, 400, 0.02, &mut rng());
        let expected = 500.0 * 400.0 * 0.02;
        let actual = m.nnz() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.25,
            "nnz {actual} vs {expected}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = power_law(300, 2.1, 64, &mut SplitMix64::new(1));
        let b = power_law(300, 2.1, 64, &mut SplitMix64::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn diagonal_is_identity_structured() {
        let m = diagonal(50, &mut rng());
        assert_eq!(m.nnz(), 50);
        assert_eq!(RowStats::compute(&m).max_row_len, 1);
        assert!(m.values().iter().all(|&v| v != 0.0));
    }

    #[test]
    fn banded_rows_are_nearly_uniform() {
        let m = banded(100, 3, &mut rng());
        let stats = RowStats::compute(&m);
        assert_eq!(stats.max_row_len, 7);
        assert_eq!(stats.min_row_len, 4);
        assert!(stats.imbalance() < 0.2);
    }

    #[test]
    fn stencil_2d_shape() {
        let m = stencil_2d(10, &mut rng());
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 100);
        // interior rows have 5 entries
        assert_eq!(RowStats::compute(&m).max_row_len, 5);
        assert_eq!(m.nnz(), 5 * 100 - 4 * 10); // 2 boundaries per dimension
    }

    #[test]
    fn stencil_3d_shape() {
        let m = stencil_3d(5, &mut rng());
        assert_eq!(m.rows(), 125);
        assert_eq!(RowStats::compute(&m).max_row_len, 7);
    }

    #[test]
    fn power_law_is_irregular() {
        let m = power_law(2000, 1.8, 512, &mut rng());
        let stats = RowStats::compute(&m);
        assert!(stats.max_row_len > 20 * stats.min_row_len.max(1));
        assert!(stats.imbalance() > 0.5, "imbalance {}", stats.imbalance());
    }

    #[test]
    fn block_diagonal_shape() {
        let m = block_diagonal(10, 8, &mut rng());
        assert_eq!(m.rows(), 80);
        assert_eq!(m.nnz(), 80 * 8);
        assert_eq!(RowStats::compute(&m).imbalance(), 0.0);
    }

    #[test]
    fn skewed_rows_have_two_modes() {
        let m = skewed_rows(1000, 4, 400, 0.02, &mut rng());
        let stats = RowStats::compute(&m);
        assert_eq!(stats.max_row_len, 400);
        assert!(stats.mean_row_len < 30.0);
    }

    #[test]
    fn uniform_row_length_is_exact() {
        let m = uniform_row_length(200, 9, &mut rng());
        let stats = RowStats::compute(&m);
        assert_eq!(stats.max_row_len, 9);
        assert_eq!(stats.min_row_len, 9);
    }

    #[test]
    fn tall_skinny_dimensions() {
        let m = tall_skinny(1000, 50, 3, &mut rng());
        assert_eq!(m.rows(), 1000);
        assert_eq!(m.cols(), 50);
        assert_eq!(m.nnz(), 3000);
    }

    #[test]
    fn hybrid_contains_band_and_tail() {
        let m = hybrid_mesh_graph(300, 2, &mut rng());
        let stats = RowStats::compute(&m);
        assert!(stats.max_row_len > 10);
        assert!(stats.min_row_len >= 3);
    }

    #[test]
    fn rows_have_sorted_distinct_columns() {
        let m = power_law(500, 2.0, 128, &mut rng());
        for row in 0..m.rows() {
            let (cols, _) = m.row(row);
            assert!(
                cols.windows(2).all(|w| w[0] < w[1]),
                "row {row} not sorted/distinct"
            );
        }
    }

    #[test]
    fn spmv_against_dense_reference() {
        let m = uniform_random(40, 30, 0.2, &mut rng());
        let x: Vec<f64> = (0..30).map(|i| i as f64 * 0.5 - 3.0).collect();
        let dense = m.to_dense();
        let expect = dense.spmv(&x);
        let got = m.spmv(&x);
        for (a, b) in expect.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
