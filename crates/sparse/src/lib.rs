//! Sparse-matrix substrate for the Seer reproduction.
//!
//! This crate provides everything Seer's SpMV case study needs from the data
//! side:
//!
//! * compressed sparse formats ([`CsrMatrix`], [`CooMatrix`], [`EllMatrix`])
//!   with validated constructors and lossless conversions,
//! * a small dense matrix type used as the correctness reference,
//! * per-row shape statistics ([`RowStats`]) — the quantities Seer gathers as
//!   "dynamically computed features",
//! * MatrixMarket I/O so real SuiteSparse files can be used when available,
//! * a deterministic synthetic collection generator ([`collection`]) standing
//!   in for the SuiteSparse Matrix Collection,
//! * a deterministic serving-traffic generator ([`traffic`]) producing
//!   replayable request streams with configurable reuse skew and bursts, and
//! * a tiny deterministic RNG ([`SplitMix64`]) so every generated dataset is
//!   bit-reproducible.
//!
//! # Example
//!
//! ```
//! use seer_sparse::{CsrMatrix, generators, SplitMix64};
//!
//! # fn main() -> Result<(), seer_sparse::SparseError> {
//! let mut rng = SplitMix64::new(7);
//! let a: CsrMatrix = generators::uniform_random(100, 100, 0.05, &mut rng);
//! let x = vec![1.0; a.cols()];
//! let y = a.spmv(&x);
//! assert_eq!(y.len(), a.rows());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csr;
mod dense;
mod ell;
mod error;
mod profile;
mod rng;
mod signature;

pub mod collection;
pub mod generators;
pub mod market;
pub mod stats;
pub mod traffic;

pub use coo::CooMatrix;
pub use csr::{CsrDelta, CsrMatrix};
pub use dense::DenseMatrix;
pub use ell::{EllMatrix, EllSlab};
pub use error::SparseError;
pub use profile::MatrixProfile;
pub use rng::SplitMix64;
pub use signature::StructureSignature;
pub use stats::{RowStats, RowStatsAccumulator};

/// Scalar element type used throughout the Seer reproduction.
///
/// The paper's kernels operate on double-precision values; keeping the alias
/// in one place makes it trivial to re-run the whole study in `f32`.
pub type Scalar = f64;
