//! Deterministic request-stream generation for serving experiments.
//!
//! Throughput and cache-locality claims about a serving layer only mean
//! something when the request stream that produced them can be replayed
//! bit-for-bit. This module turns a [`SplitMix64`] seed into an infinite-ish
//! stream of [`TrafficRequest`]s over a corpus of `corpus_size` matrices
//! (by index — the caller owns the actual matrices, typically a
//! [`crate::collection::generate`] collection) with three independently
//! configurable axes of realism:
//!
//! * **reuse skew** — a Zipf-like hot set: most requests go to a small set of
//!   popular matrices, the rest spread uniformly over the cold corpus. This is
//!   the regime plan caches are built for, and the knob that controls how much
//!   a cache can possibly help.
//! * **burst structure** — real traffic repeats: an iterative solver submits
//!   the same operator many times in a row. Bursts replay the previous matrix
//!   for a sampled run length.
//! * **iteration mix** — per-request iteration counts drawn from a
//!   configurable distribution, matching the paper's observation that
//!   workloads span single-shot to hundreds of iterations.
//!
//! Two generators built from equal configs yield identical streams; the
//! stream is also independent of how the consumer interleaves calls, so a
//! sequential replay and a sharded concurrent replay see the same requests.
//!
//! # Example
//!
//! ```
//! use seer_sparse::traffic::{TrafficConfig, TrafficGenerator};
//!
//! let config = TrafficConfig::smoke(16);
//! let requests: Vec<_> = TrafficGenerator::new(&config).take(100).collect();
//! let replay: Vec<_> = TrafficGenerator::new(&config).take(100).collect();
//! assert_eq!(requests, replay);
//! assert!(requests.iter().all(|r| r.matrix_index < 16));
//! ```

use crate::SplitMix64;

/// Per-request iteration-count distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum IterationMix {
    /// Every request runs the same number of iterations.
    Fixed(usize),
    /// Iteration counts drawn uniformly from `[lo, hi]`.
    Uniform {
        /// Smallest iteration count (inclusive).
        lo: usize,
        /// Largest iteration count (inclusive).
        hi: usize,
    },
    /// A two-mode mix: mostly `short` runs with an occasional `long` solver
    /// run — the shape the amortization study (Fig. 7) cares about.
    Bimodal {
        /// Iteration count of the common short requests.
        short: usize,
        /// Iteration count of the rare long requests.
        long: usize,
        /// Fraction of requests that are long, in `[0, 1]`.
        long_fraction: f64,
    },
}

impl IterationMix {
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        match *self {
            IterationMix::Fixed(n) => n.max(1),
            IterationMix::Uniform { lo, hi } => {
                let lo = lo.max(1);
                let hi = hi.max(lo);
                rng.next_range(lo, hi + 1)
            }
            IterationMix::Bimodal {
                short,
                long,
                long_fraction,
            } => {
                if rng.next_f64() < long_fraction.clamp(0.0, 1.0) {
                    long.max(1)
                } else {
                    short.max(1)
                }
            }
        }
    }
}

/// Configuration of a deterministic traffic stream.
///
/// Equal configs generate identical streams.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Seed of the stream; every draw derives from it.
    pub seed: u64,
    /// Number of distinct matrices the stream addresses (requests carry
    /// indices in `[0, corpus_size)`).
    pub corpus_size: usize,
    /// Number of matrices in the popular hot set (clamped to `corpus_size`).
    pub hot_set_size: usize,
    /// Probability that a fresh (non-burst) request targets the hot set.
    pub hot_fraction: f64,
    /// Zipf-like exponent of rank popularity inside the hot set; larger means
    /// more mass on the few hottest matrices. Must be `> 1`.
    pub zipf_exponent: f64,
    /// Probability that a request opens a burst replaying its matrix.
    pub burst_fraction: f64,
    /// Maximum burst run length (a burst replays the same matrix for a
    /// uniformly sampled `2..=max_burst_len` consecutive requests).
    pub max_burst_len: usize,
    /// Distribution of per-request iteration counts.
    pub iterations: IterationMix,
    /// Probability that a request carries a *value update*: the caller is
    /// expected to mutate the target matrix's values (same sparsity pattern)
    /// through [`crate::CsrMatrix::update_values`] before serving it — the
    /// time-stepping-solver shape where the operator's coefficients change
    /// every step but its structure never does. Zero (the default for every
    /// pre-existing scenario) disables the draw entirely, so older streams
    /// replay bit-identically.
    pub value_update_fraction: f64,
    /// Probability that a request is annotated [`ChaosEvent::KillDevice`]:
    /// the harness should hard-fail one serving device before submitting
    /// it. The traffic stream owns the *timing* of chaos; which device dies
    /// (and whether a later kill is a no-op because everything is already
    /// dead) is the harness's policy. Zero (the default everywhere outside
    /// the chaos scenarios) disables the draw entirely, so pre-chaos
    /// streams replay bit-identically.
    pub chaos_kill_fraction: f64,
    /// Probability of a [`ChaosEvent::HealDevice`] annotation: the harness
    /// should heal a previously failed device. Zero by default, like
    /// [`TrafficConfig::chaos_kill_fraction`].
    pub chaos_heal_fraction: f64,
    /// Probability of a [`ChaosEvent::JoinDevice`] annotation: the harness
    /// should join a fresh device to the serving fleet. Zero by default,
    /// like [`TrafficConfig::chaos_kill_fraction`].
    pub chaos_join_fraction: f64,
    /// Probability that a request is [`RequestClass::Batch`] — throughput
    /// traffic an admission-controlled pool may delay behind interactive
    /// work. Zero (the default for every pre-overload scenario) disables the
    /// class draw entirely, so older streams replay bit-identically.
    pub batch_fraction: f64,
    /// Probability that a request is [`RequestClass::BestEffort`] — the
    /// first traffic an overloaded pool sheds. Drawn on the same guarded
    /// stream as [`TrafficConfig::batch_fraction`]; whatever is left is
    /// [`RequestClass::Interactive`].
    pub best_effort_fraction: f64,
    /// Probability that a request carries a completion deadline. Zero (the
    /// default) disables the draw entirely, like the class fractions.
    pub deadline_fraction: f64,
    /// Inclusive `[lo, hi]` bounds, in microseconds, of a uniformly drawn
    /// deadline for the requests that carry one.
    pub deadline_range_us: (u64, u64),
    /// Probability that an opening burst is an *identical* burst: every
    /// member repeats not just the matrix but the whole request — one
    /// iteration count sampled at the burst's opening and pinned for the
    /// run, and no value updates mid-burst — the solver-inner-loop shape a
    /// micro-batching dequeue can coalesce into a single plan activation.
    /// Drawn on its own split stream only when a burst opens; zero (the
    /// default everywhere outside the routing scenarios) disables the draw
    /// entirely, so pre-existing streams replay bit-identically.
    pub identical_burst_fraction: f64,
}

impl TrafficConfig {
    /// A stream with solver-like locality: a small hot set takes most of the
    /// traffic and a third of requests open short bursts.
    pub fn skewed(corpus_size: usize, seed: u64) -> Self {
        Self {
            seed,
            corpus_size,
            hot_set_size: (corpus_size / 8).max(1),
            hot_fraction: 0.8,
            zipf_exponent: 1.8,
            burst_fraction: 0.3,
            max_burst_len: 6,
            iterations: IterationMix::Bimodal {
                short: 1,
                long: 19,
                long_fraction: 0.25,
            },
            value_update_fraction: 0.0,
            chaos_kill_fraction: 0.0,
            chaos_heal_fraction: 0.0,
            chaos_join_fraction: 0.0,
            batch_fraction: 0.0,
            best_effort_fraction: 0.0,
            deadline_fraction: 0.0,
            deadline_range_us: (0, 0),
            identical_burst_fraction: 0.0,
        }
    }

    /// A uniform stream (every draw lands anywhere in the corpus with equal
    /// probability) — the cache-hostile baseline.
    pub fn uniform(corpus_size: usize, seed: u64) -> Self {
        Self {
            seed,
            corpus_size,
            hot_set_size: corpus_size.max(1),
            hot_fraction: 0.0,
            zipf_exponent: 1.5,
            burst_fraction: 0.0,
            max_burst_len: 1,
            iterations: IterationMix::Fixed(1),
            value_update_fraction: 0.0,
            chaos_kill_fraction: 0.0,
            chaos_heal_fraction: 0.0,
            chaos_join_fraction: 0.0,
            batch_fraction: 0.0,
            best_effort_fraction: 0.0,
            deadline_fraction: 0.0,
            deadline_range_us: (0, 0),
            identical_burst_fraction: 0.0,
        }
    }

    /// A tiny deterministic stream for unit tests and CI smoke runs.
    pub fn smoke(corpus_size: usize) -> Self {
        Self {
            seed: 0x7AF1C,
            ..Self::skewed(corpus_size, 0x7AF1C)
        }
    }

    /// A heterogeneous-fleet scenario: moderately skewed reuse over the
    /// whole corpus with a **wide uniform iteration mix** (1..=200).
    ///
    /// Device placement depends on the *pairing* of matrix structure with
    /// iteration count — single-shot requests are launch-overhead-bound
    /// (small/low-latency devices win) while long solver runs amortize
    /// preprocessing and become bandwidth-bound (big devices win) — so a
    /// corpus mixing skew-heavy and uniform matrices under this mix
    /// exercises every device of a fleet rather than collapsing onto one.
    /// The hot set spans a quarter of the corpus so each serving device's
    /// shard group sees repeat traffic of its own slice.
    pub fn fleet_mixed(corpus_size: usize, seed: u64) -> Self {
        Self {
            seed,
            corpus_size,
            hot_set_size: (corpus_size / 4).max(1),
            hot_fraction: 0.7,
            zipf_exponent: 1.5,
            burst_fraction: 0.25,
            max_burst_len: 5,
            iterations: IterationMix::Uniform { lo: 1, hi: 200 },
            value_update_fraction: 0.0,
            chaos_kill_fraction: 0.0,
            chaos_heal_fraction: 0.0,
            chaos_join_fraction: 0.0,
            batch_fraction: 0.0,
            best_effort_fraction: 0.0,
            deadline_fraction: 0.0,
            deadline_range_us: (0, 0),
            identical_burst_fraction: 0.0,
        }
    }

    /// A time-stepping-solver scenario: the skewed hot-set stream where a
    /// third of requests first mutate their operator's *values* (structure
    /// unchanged). This is the incremental-update regime: a selection/plan
    /// cache keyed on content would go cold on every step, while the
    /// sparsity-keyed caches stay fully warm and only the values-embedding
    /// ELL slab refreshes.
    pub fn mutating_hot_set(corpus_size: usize, seed: u64) -> Self {
        Self {
            value_update_fraction: 0.35,
            ..Self::skewed(corpus_size, seed)
        }
    }

    /// A near-duplicate-family scenario: cache-hostile uniform traffic with
    /// no bursts, meant to be replayed over a corpus built of structurally
    /// similar matrix *families* (same generator family, nearby seeds — the
    /// multi-tenant shape where each tenant's operator is a fresh matrix
    /// that looks like a thousand already-served ones). Every request is a
    /// distinct sparsity pattern as far as exact caches are concerned, so
    /// the stream isolates what structure-class inheritance saves on the
    /// cold path.
    pub fn near_duplicate_families(corpus_size: usize, seed: u64) -> Self {
        Self {
            seed,
            corpus_size,
            hot_set_size: corpus_size.max(1),
            hot_fraction: 0.0,
            zipf_exponent: 1.5,
            burst_fraction: 0.0,
            max_burst_len: 1,
            iterations: IterationMix::Bimodal {
                short: 1,
                long: 19,
                long_fraction: 0.25,
            },
            value_update_fraction: 0.0,
            chaos_kill_fraction: 0.0,
            chaos_heal_fraction: 0.0,
            chaos_join_fraction: 0.0,
            batch_fraction: 0.0,
            best_effort_fraction: 0.0,
            deadline_fraction: 0.0,
            deadline_range_us: (0, 0),
            identical_burst_fraction: 0.0,
        }
    }

    /// A chaos scenario: the fleet-mixed stream with a sprinkling of
    /// [`ChaosEvent::KillDevice`] annotations (~1 per 250 requests), so a
    /// serving device is hard-failed mid-stream while solver traffic is in
    /// flight. The harness decides which device dies; every other axis of
    /// the stream is bit-identical to [`TrafficConfig::fleet_mixed`].
    pub fn device_death_mid_stream(corpus_size: usize, seed: u64) -> Self {
        Self {
            chaos_kill_fraction: 0.004,
            ..Self::fleet_mixed(corpus_size, seed)
        }
    }

    /// A chaos scenario: a device that flaps — kill and heal annotations
    /// drawn independently at ~1% each, so the same device keeps dropping
    /// out of and rejoining the live set while traffic flows.
    pub fn flapping_device(corpus_size: usize, seed: u64) -> Self {
        Self {
            chaos_kill_fraction: 0.01,
            chaos_heal_fraction: 0.01,
            ..Self::fleet_mixed(corpus_size, seed)
        }
    }

    /// A chaos scenario: fresh devices join the fleet under load (~1 join
    /// per 250 requests), exercising router construction and shard-group
    /// publication while the pool is busy.
    pub fn join_under_load(corpus_size: usize, seed: u64) -> Self {
        Self {
            chaos_join_fraction: 0.004,
            ..Self::fleet_mixed(corpus_size, seed)
        }
    }

    /// An overload scenario: the skewed hot-set stream with a three-way
    /// class mix (30% batch, 35% best-effort, the rest interactive) and a
    /// quarter of requests carrying sub-20 ms deadlines. Offered at a rate
    /// beyond the pool's capacity — pacing is the harness's job — this is
    /// the stream an admission-controlled front door is judged on: the
    /// interactive slice must stay fast while the lower classes absorb the
    /// shedding. Matrix choice, bursts and iteration counts are
    /// bit-identical to [`TrafficConfig::skewed`].
    pub fn sustained_overload(corpus_size: usize, seed: u64) -> Self {
        Self {
            batch_fraction: 0.3,
            best_effort_fraction: 0.35,
            deadline_fraction: 0.25,
            deadline_range_us: (500, 20_000),
            ..Self::skewed(corpus_size, seed)
        }
    }

    /// An overload scenario with heavy burst structure: most requests open
    /// long same-matrix bursts, so overload arrives in spikes that slam one
    /// shard's queue while its neighbours idle — the regime that separates
    /// per-shard bounded queues from a single global bound.
    pub fn burst_overload(corpus_size: usize, seed: u64) -> Self {
        Self {
            burst_fraction: 0.6,
            max_burst_len: 12,
            batch_fraction: 0.25,
            best_effort_fraction: 0.4,
            deadline_fraction: 0.25,
            deadline_range_us: (500, 20_000),
            ..Self::skewed(corpus_size, seed)
        }
    }

    /// A deadline/priority mix over the fleet-mixed stream: every class well
    /// represented and half of all requests carrying tight deadlines, for
    /// experiments about who expires and who gets shed when queues back up.
    pub fn deadline_priority_mix(corpus_size: usize, seed: u64) -> Self {
        Self {
            batch_fraction: 0.25,
            best_effort_fraction: 0.25,
            deadline_fraction: 0.5,
            deadline_range_us: (200, 10_000),
            ..Self::fleet_mixed(corpus_size, seed)
        }
    }

    /// A micro-batching scenario: the skewed hot-set stream made burst-heavy
    /// (nearly half of fresh draws open runs of up to 12) with 90% of those
    /// bursts *identical* — same matrix, one pinned iteration count, no
    /// mid-burst mutation — so a same-fingerprint coalescing dequeue gets
    /// long runs to fold into single plan activations. Matrix choice and
    /// burst structure replay the skewed base bit-for-bit.
    pub fn identical_burst(corpus_size: usize, seed: u64) -> Self {
        Self {
            burst_fraction: 0.45,
            max_burst_len: 12,
            identical_burst_fraction: 0.9,
            ..Self::skewed(corpus_size, seed)
        }
    }

    /// A routing-storm scenario: cache-hostile uniform traffic (no hot set,
    /// so nearly every arrival is a cold matrix that needs a full routing
    /// resolve) punctuated by identical bursts. This is the stream that
    /// separates an O(1) offloaded submit from one that pays cold routing
    /// inline: the submit path sees a flood of never-seen fingerprints
    /// while the batching dequeue still gets runs to coalesce.
    pub fn routing_storm(corpus_size: usize, seed: u64) -> Self {
        Self {
            burst_fraction: 0.35,
            max_burst_len: 10,
            identical_burst_fraction: 1.0,
            iterations: IterationMix::Uniform { lo: 1, hi: 8 },
            ..Self::uniform(corpus_size, seed)
        }
    }
}

/// The service class of one request: which priority lane it should wait in
/// and how eager an overloaded serving pool is to shed it. Decoupled from
/// the serving layer's own priority type (the stream generator knows
/// nothing about pools); harnesses map it 1:1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RequestClass {
    /// Latency-sensitive traffic: served first, shed last.
    #[default]
    Interactive,
    /// Throughput traffic: may wait behind interactive work.
    Batch,
    /// Scavenger traffic: the first to be shed under overload.
    BestEffort,
}

/// A membership-chaos annotation on one request: what the serving harness
/// should do to the fleet *before* submitting it. The stream owns the
/// timing; the harness owns the policy (which device, what spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChaosEvent {
    /// No membership change.
    #[default]
    None,
    /// Hard-fail one serving device ([`TrafficConfig::chaos_kill_fraction`]).
    KillDevice,
    /// Heal a previously failed device
    /// ([`TrafficConfig::chaos_heal_fraction`]).
    HealDevice,
    /// Join a fresh device to the fleet
    /// ([`TrafficConfig::chaos_join_fraction`]).
    JoinDevice,
}

/// One request of a traffic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficRequest {
    /// Index of the target matrix in the caller's corpus.
    pub matrix_index: usize,
    /// Number of SpMV iterations the request runs.
    pub iterations: usize,
    /// Position within a burst (0 = fresh draw, 1.. = replay of the previous
    /// request's matrix). Useful for asserting burst structure in tests.
    pub burst_position: usize,
    /// Whether the caller should mutate the target matrix's values (keeping
    /// its sparsity pattern) before serving this request. Always `false`
    /// when [`TrafficConfig::value_update_fraction`] is zero.
    pub value_update: bool,
    /// Membership chaos to inject before this request. Always
    /// [`ChaosEvent::None`] when every chaos fraction is zero.
    pub chaos: ChaosEvent,
    /// Service class of the request. Always [`RequestClass::Interactive`]
    /// when both class fractions are zero.
    pub class: RequestClass,
    /// Completion deadline in microseconds from submission, for harnesses
    /// replaying the stream against a deadline-aware pool. Always `None`
    /// when [`TrafficConfig::deadline_fraction`] is zero.
    pub deadline_us: Option<u64>,
}

/// Deterministic iterator over a [`TrafficConfig`]'s request stream.
///
/// The generator is infinite; bound it with [`Iterator::take`].
#[derive(Debug, Clone)]
pub struct TrafficGenerator {
    config: TrafficConfig,
    /// Draws deciding hot/cold, burst openings and burst lengths.
    structure_rng: SplitMix64,
    /// Draws for iteration counts, decoupled so changing the iteration mix
    /// does not perturb which matrices are requested.
    iteration_rng: SplitMix64,
    /// Draws deciding value updates, decoupled for the same reason: turning
    /// mutation on or off never perturbs matrix choice or iteration counts.
    mutation_rng: SplitMix64,
    /// Draws deciding chaos events, decoupled like the others: enabling a
    /// chaos fraction never perturbs matrix choice, iteration counts or
    /// value updates, so a chaos stream differs from its calm base only in
    /// the annotations.
    chaos_rng: SplitMix64,
    /// Draws deciding service classes and deadlines, decoupled like the
    /// others: an overload scenario differs from its calm base only in the
    /// class/deadline annotations, never in what is requested.
    admission_rng: SplitMix64,
    /// Draws deciding whether an opening burst is an identical burst,
    /// decoupled like the others: enabling identical bursts never perturbs
    /// matrix choice, burst structure, chaos or admission annotations.
    identity_rng: SplitMix64,
    /// Shuffled map from popularity rank to corpus index, so the hot set is
    /// spread across the corpus (and therefore across serving shards) instead
    /// of clustering at the low indices.
    rank_to_index: Vec<usize>,
    /// Remaining replays of `current` before a fresh draw.
    burst_left: usize,
    current: usize,
    burst_position: usize,
    /// `Some(n)` while inside an identical burst: every member (including
    /// the opener) carries exactly `n` iterations and no value update.
    pinned_iterations: Option<usize>,
}

impl TrafficGenerator {
    /// Builds the deterministic stream described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.corpus_size` is zero or `config.zipf_exponent <= 1`.
    pub fn new(config: &TrafficConfig) -> Self {
        assert!(config.corpus_size > 0, "traffic needs a non-empty corpus");
        assert!(
            config.zipf_exponent > 1.0,
            "zipf_exponent must be > 1 (got {})",
            config.zipf_exponent
        );
        let mut root = SplitMix64::new(config.seed);
        let mut permutation_rng = root.split(0x9A9);
        let mut rank_to_index: Vec<usize> = (0..config.corpus_size).collect();
        permutation_rng.shuffle(&mut rank_to_index);
        Self {
            structure_rng: root.split(0x57),
            iteration_rng: root.split(0x17E),
            mutation_rng: root.split(0x3B),
            chaos_rng: root.split(0xC4A),
            // Split last: the admission stream must not shift the splits the
            // pre-overload streams were derived from.
            admission_rng: root.split(0xAD),
            // Split after 0xAD for the same reason: the identity stream is
            // newer still, and every earlier split must keep its value.
            identity_rng: root.split(0x1DE),
            rank_to_index,
            config: config.clone(),
            burst_left: 0,
            current: 0,
            burst_position: 0,
            pinned_iterations: None,
        }
    }

    /// The hot set as corpus indices, most popular first.
    ///
    /// Useful for tests asserting that skew concentrates on these indices.
    pub fn hot_set(&self) -> &[usize] {
        let hot = self.config.hot_set_size.clamp(1, self.config.corpus_size);
        &self.rank_to_index[..hot]
    }

    /// Draws the next fresh (non-burst) matrix index.
    fn draw_index(&mut self) -> usize {
        let hot = self.config.hot_set_size.clamp(1, self.config.corpus_size);
        if self.structure_rng.next_f64() < self.config.hot_fraction.clamp(0.0, 1.0) {
            // Zipf-like rank sampling inside the hot set: rank 1 is hottest.
            let rank = self
                .structure_rng
                .next_power_law(self.config.zipf_exponent, hot);
            self.rank_to_index[rank - 1]
        } else {
            self.rank_to_index[self.structure_rng.next_below(self.config.corpus_size)]
        }
    }
}

impl Iterator for TrafficGenerator {
    type Item = TrafficRequest;

    fn next(&mut self) -> Option<TrafficRequest> {
        if self.burst_left > 0 {
            self.burst_left -= 1;
            self.burst_position += 1;
        } else {
            self.current = self.draw_index();
            self.burst_position = 0;
            self.pinned_iterations = None;
            if self.config.max_burst_len >= 2
                && self.structure_rng.next_f64() < self.config.burst_fraction.clamp(0.0, 1.0)
            {
                // The burst replays `current` for the next `len - 1` requests.
                let len = self
                    .structure_rng
                    .next_range(2, self.config.max_burst_len + 1);
                self.burst_left = len - 1;
                // Guarded draw on the identity stream, made only when a
                // burst opens: an identical burst samples its iteration
                // count once here and pins it for the whole run. With the
                // fraction at zero the stream is never advanced, so every
                // pre-existing scenario replays bit-identically.
                if self.config.identical_burst_fraction > 0.0
                    && self.identity_rng.next_f64()
                        < self.config.identical_burst_fraction.clamp(0.0, 1.0)
                {
                    self.pinned_iterations =
                        Some(self.config.iterations.sample(&mut self.iteration_rng));
                }
            }
        }
        // Guarded draw: with the fraction at zero the mutation RNG is never
        // advanced, so pre-existing configs replay their exact streams. The
        // draw still advances inside an identical burst (keeping non-burst
        // requests aligned with the calm base), but its outcome is forced
        // off: an identical burst never mutates its operator mid-run.
        let value_update = self.config.value_update_fraction > 0.0
            && self.mutation_rng.next_f64() < self.config.value_update_fraction.clamp(0.0, 1.0)
            && self.pinned_iterations.is_none();
        // Chaos draws are guarded the same way, in a fixed kill/heal/join
        // order on their own stream; the first event to fire wins (at most
        // one membership change per request keeps harnesses simple).
        let mut chaos = ChaosEvent::None;
        if self.config.chaos_kill_fraction > 0.0
            && self.chaos_rng.next_f64() < self.config.chaos_kill_fraction.clamp(0.0, 1.0)
        {
            chaos = ChaosEvent::KillDevice;
        }
        if self.config.chaos_heal_fraction > 0.0
            && self.chaos_rng.next_f64() < self.config.chaos_heal_fraction.clamp(0.0, 1.0)
            && chaos == ChaosEvent::None
        {
            chaos = ChaosEvent::HealDevice;
        }
        if self.config.chaos_join_fraction > 0.0
            && self.chaos_rng.next_f64() < self.config.chaos_join_fraction.clamp(0.0, 1.0)
            && chaos == ChaosEvent::None
        {
            chaos = ChaosEvent::JoinDevice;
        }
        // Class and deadline draws share the admission stream, each behind
        // its own zero-fraction guard: every pre-overload scenario leaves
        // the stream untouched, so its requests replay bit-identically with
        // the default annotations.
        let class = if self.config.batch_fraction > 0.0 || self.config.best_effort_fraction > 0.0 {
            let batch = self.config.batch_fraction.clamp(0.0, 1.0);
            let best_effort = self.config.best_effort_fraction.clamp(0.0, 1.0 - batch);
            let draw = self.admission_rng.next_f64();
            if draw < batch {
                RequestClass::Batch
            } else if draw < batch + best_effort {
                RequestClass::BestEffort
            } else {
                RequestClass::Interactive
            }
        } else {
            RequestClass::Interactive
        };
        let deadline_us = (self.config.deadline_fraction > 0.0
            && self.admission_rng.next_f64() < self.config.deadline_fraction.clamp(0.0, 1.0))
        .then(|| {
            let (lo, hi) = self.config.deadline_range_us;
            let lo = lo.max(1);
            let hi = hi.max(lo);
            self.admission_rng.next_range(lo as usize, hi as usize + 1) as u64
        });
        // An identical burst replays its pinned count (sampled once at the
        // opening); everything else samples per request as always.
        let iterations = match self.pinned_iterations {
            Some(pinned) => pinned,
            None => self.config.iterations.sample(&mut self.iteration_rng),
        };
        Some(TrafficRequest {
            matrix_index: self.current,
            iterations,
            burst_position: self.burst_position,
            value_update,
            chaos,
            class,
            deadline_us,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn take(config: &TrafficConfig, n: usize) -> Vec<TrafficRequest> {
        TrafficGenerator::new(config).take(n).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let config = TrafficConfig::skewed(64, 42);
        assert_eq!(take(&config, 5_000), take(&config, 5_000));
    }

    #[test]
    fn different_seeds_differ() {
        let a = take(&TrafficConfig::skewed(64, 1), 500);
        let b = take(&TrafficConfig::skewed(64, 2), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn indices_stay_in_corpus() {
        for request in take(&TrafficConfig::skewed(17, 3), 2_000) {
            assert!(request.matrix_index < 17);
            assert!(request.iterations >= 1);
        }
    }

    #[test]
    fn hot_set_dominates_a_skewed_stream() {
        let config = TrafficConfig::skewed(64, 7);
        let generator = TrafficGenerator::new(&config);
        let hot: Vec<usize> = generator.hot_set().to_vec();
        assert_eq!(hot.len(), 8);
        let requests = take(&config, 10_000);
        let in_hot = requests
            .iter()
            .filter(|r| hot.contains(&r.matrix_index))
            .count();
        // hot_fraction is 0.8 and bursts replay hot matrices proportionally.
        assert!(
            in_hot as f64 > 0.7 * requests.len() as f64,
            "hot set got {in_hot}/{} requests",
            requests.len()
        );
    }

    #[test]
    fn zipf_ranks_are_ordered_by_popularity() {
        let config = TrafficConfig {
            burst_fraction: 0.0,
            hot_fraction: 1.0,
            ..TrafficConfig::skewed(32, 11)
        };
        let generator = TrafficGenerator::new(&config);
        let hottest = generator.hot_set()[0];
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for request in take(&config, 20_000) {
            *counts.entry(request.matrix_index).or_default() += 1;
        }
        let max_count = counts.values().copied().max().unwrap();
        assert_eq!(counts[&hottest], max_count, "rank 1 must be the hottest");
    }

    #[test]
    fn bursts_replay_the_previous_matrix() {
        let requests = take(&TrafficConfig::skewed(64, 13), 5_000);
        let mut burst_requests = 0;
        for pair in requests.windows(2) {
            if pair[1].burst_position > 0 {
                assert_eq!(pair[1].matrix_index, pair[0].matrix_index);
                assert_eq!(pair[1].burst_position, pair[0].burst_position + 1);
                burst_requests += 1;
            }
        }
        assert!(
            burst_requests > 100,
            "expected bursts, saw {burst_requests}"
        );
    }

    #[test]
    fn uniform_stream_has_no_bursts_and_spreads_out() {
        let config = TrafficConfig::uniform(32, 5);
        let requests = take(&config, 10_000);
        assert!(requests.iter().all(|r| r.burst_position == 0));
        let mut counts = vec![0usize; 32];
        for r in &requests {
            counts[r.matrix_index] += 1;
        }
        // Every matrix shows up; no matrix takes more than a few percent.
        assert!(counts.iter().all(|&c| c > 0));
        assert!(*counts.iter().max().unwrap() < 1_000);
    }

    #[test]
    fn iteration_mixes_respect_bounds() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..2_000 {
            assert_eq!(IterationMix::Fixed(7).sample(&mut rng), 7);
            let u = IterationMix::Uniform { lo: 3, hi: 9 }.sample(&mut rng);
            assert!((3..=9).contains(&u));
            let b = IterationMix::Bimodal {
                short: 1,
                long: 19,
                long_fraction: 0.5,
            }
            .sample(&mut rng);
            assert!(b == 1 || b == 19);
        }
    }

    #[test]
    fn bimodal_mix_hits_both_modes() {
        let config = TrafficConfig::skewed(8, 21);
        let requests = take(&config, 4_000);
        let long = requests.iter().filter(|r| r.iterations == 19).count();
        let short = requests.iter().filter(|r| r.iterations == 1).count();
        assert_eq!(long + short, requests.len());
        assert!(long > 500 && short > 2_000, "long {long} short {short}");
    }

    #[test]
    fn iteration_mix_does_not_perturb_matrix_choice() {
        let base = TrafficConfig::skewed(64, 31);
        let other = TrafficConfig {
            iterations: IterationMix::Fixed(5),
            ..base.clone()
        };
        let a: Vec<usize> = take(&base, 2_000).iter().map(|r| r.matrix_index).collect();
        let b: Vec<usize> = take(&other, 2_000).iter().map(|r| r.matrix_index).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn fleet_mixed_spans_the_iteration_range_and_replays() {
        let config = TrafficConfig::fleet_mixed(48, 0xF1EE7);
        let requests = take(&config, 8_000);
        assert_eq!(requests, take(&config, 8_000), "stream must replay");
        assert!(requests.iter().all(|r| (1..=200).contains(&r.iterations)));
        // Both placement regimes are exercised: launch-bound single shots
        // and long amortizing solver runs.
        let short = requests.iter().filter(|r| r.iterations <= 5).count();
        let long = requests.iter().filter(|r| r.iterations >= 150).count();
        assert!(short > 100, "short runs {short}");
        assert!(long > 100, "long runs {long}");
        // The whole corpus is touched, so every slice of a mixed corpus
        // (skew-heavy and uniform members alike) sees traffic.
        let mut seen = [false; 48];
        for r in &requests {
            seen[r.matrix_index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn legacy_scenarios_never_request_value_updates() {
        for config in [
            TrafficConfig::skewed(32, 9),
            TrafficConfig::uniform(32, 9),
            TrafficConfig::smoke(32),
            TrafficConfig::fleet_mixed(32, 9),
            TrafficConfig::near_duplicate_families(32, 9),
            TrafficConfig::mutating_hot_set(32, 9),
        ] {
            let requests = take(&config, 2_000);
            assert!(requests.iter().all(|r| r.chaos == ChaosEvent::None));
        }
        for config in [
            TrafficConfig::skewed(32, 9),
            TrafficConfig::uniform(32, 9),
            TrafficConfig::smoke(32),
            TrafficConfig::fleet_mixed(32, 9),
            TrafficConfig::near_duplicate_families(32, 9),
        ] {
            assert!(take(&config, 2_000).iter().all(|r| !r.value_update));
        }
    }

    #[test]
    fn chaos_scenarios_fire_their_events_and_replay() {
        let death = TrafficConfig::device_death_mid_stream(32, 0xC405);
        let requests = take(&death, 4_000);
        assert_eq!(requests, take(&death, 4_000), "chaos stream must replay");
        let kills = requests
            .iter()
            .filter(|r| r.chaos == ChaosEvent::KillDevice)
            .count();
        assert!(kills >= 1, "a mid-stream death must actually occur");
        assert!(
            requests
                .iter()
                .all(|r| matches!(r.chaos, ChaosEvent::None | ChaosEvent::KillDevice)),
            "death scenario draws kills only"
        );

        let flap = TrafficConfig::flapping_device(32, 0xC405);
        let requests = take(&flap, 4_000);
        let kills = requests
            .iter()
            .filter(|r| r.chaos == ChaosEvent::KillDevice)
            .count();
        let heals = requests
            .iter()
            .filter(|r| r.chaos == ChaosEvent::HealDevice)
            .count();
        assert!(
            kills > 5 && heals > 5,
            "flapping needs both: {kills}/{heals}"
        );

        let join = TrafficConfig::join_under_load(32, 0xC405);
        let requests = take(&join, 4_000);
        assert!(
            requests.iter().any(|r| r.chaos == ChaosEvent::JoinDevice),
            "a join must occur under load"
        );
    }

    #[test]
    fn chaos_does_not_perturb_matrix_choice_or_iterations() {
        let calm = TrafficConfig::fleet_mixed(48, 77);
        let chaotic = TrafficConfig::flapping_device(48, 77);
        let a = take(&calm, 3_000);
        let b = take(&chaotic, 3_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix_index, y.matrix_index);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.burst_position, y.burst_position);
            assert_eq!(x.value_update, y.value_update);
        }
        assert!(b.iter().any(|r| r.chaos != ChaosEvent::None));
    }

    #[test]
    fn mutating_hot_set_replays_and_mutates_at_the_configured_rate() {
        let config = TrafficConfig::mutating_hot_set(32, 17);
        let requests = take(&config, 10_000);
        assert_eq!(requests, take(&config, 10_000), "stream must replay");
        let updates = requests.iter().filter(|r| r.value_update).count();
        let rate = updates as f64 / requests.len() as f64;
        assert!(
            (rate - config.value_update_fraction).abs() < 0.03,
            "update rate {rate} vs configured {}",
            config.value_update_fraction
        );
    }

    #[test]
    fn value_updates_do_not_perturb_matrix_choice_or_iterations() {
        let base = TrafficConfig::skewed(64, 23);
        let mutating = TrafficConfig {
            value_update_fraction: 0.5,
            ..base.clone()
        };
        let a = take(&base, 2_000);
        let b = take(&mutating, 2_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix_index, y.matrix_index);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.burst_position, y.burst_position);
        }
        assert!(b.iter().any(|r| r.value_update));
    }

    #[test]
    fn near_duplicate_families_is_cache_hostile() {
        let config = TrafficConfig::near_duplicate_families(48, 0xFA);
        let requests = take(&config, 5_000);
        assert_eq!(requests, take(&config, 5_000), "stream must replay");
        assert!(requests.iter().all(|r| r.burst_position == 0));
        let mut seen = [false; 48];
        for r in &requests {
            seen[r.matrix_index] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw touches the corpus");
    }

    #[test]
    fn overload_scenarios_fire_their_annotations_and_replay() {
        for config in [
            TrafficConfig::sustained_overload(32, 0x0AD5),
            TrafficConfig::burst_overload(32, 0x0AD5),
            TrafficConfig::deadline_priority_mix(32, 0x0AD5),
        ] {
            let requests = take(&config, 6_000);
            assert_eq!(requests, take(&config, 6_000), "overload stream replays");
            let batch = requests
                .iter()
                .filter(|r| r.class == RequestClass::Batch)
                .count() as f64;
            let best_effort = requests
                .iter()
                .filter(|r| r.class == RequestClass::BestEffort)
                .count() as f64;
            let interactive = requests
                .iter()
                .filter(|r| r.class == RequestClass::Interactive)
                .count() as f64;
            let n = requests.len() as f64;
            assert!(
                (batch / n - config.batch_fraction).abs() < 0.03,
                "batch rate {} vs {}",
                batch / n,
                config.batch_fraction
            );
            assert!(
                (best_effort / n - config.best_effort_fraction).abs() < 0.03,
                "best-effort rate {} vs {}",
                best_effort / n,
                config.best_effort_fraction
            );
            assert!(interactive > 0.0, "some interactive traffic remains");
            let with_deadline = requests.iter().filter(|r| r.deadline_us.is_some()).count();
            let rate = with_deadline as f64 / n;
            assert!(
                (rate - config.deadline_fraction).abs() < 0.03,
                "deadline rate {rate} vs {}",
                config.deadline_fraction
            );
            let (lo, hi) = config.deadline_range_us;
            assert!(requests
                .iter()
                .filter_map(|r| r.deadline_us)
                .all(|d| (lo..=hi).contains(&d)));
        }
    }

    #[test]
    fn legacy_scenarios_never_carry_classes_or_deadlines() {
        for config in [
            TrafficConfig::skewed(32, 9),
            TrafficConfig::uniform(32, 9),
            TrafficConfig::smoke(32),
            TrafficConfig::fleet_mixed(32, 9),
            TrafficConfig::near_duplicate_families(32, 9),
            TrafficConfig::mutating_hot_set(32, 9),
            TrafficConfig::flapping_device(32, 9),
        ] {
            for request in take(&config, 2_000) {
                assert_eq!(request.class, RequestClass::Interactive);
                assert_eq!(request.deadline_us, None);
            }
        }
    }

    #[test]
    fn overload_annotations_do_not_perturb_what_is_requested() {
        // The admission stream is split last and guarded by zero fractions:
        // an overload scenario requests exactly what its calm base does,
        // differing only in the class/deadline annotations — and the calm
        // base is bit-identical to its pre-overload self.
        let calm = TrafficConfig::skewed(64, 0xBEEF);
        let overloaded = TrafficConfig::sustained_overload(64, 0xBEEF);
        let a = take(&calm, 3_000);
        let b = take(&overloaded, 3_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix_index, y.matrix_index);
            assert_eq!(x.iterations, y.iterations);
            assert_eq!(x.burst_position, y.burst_position);
            assert_eq!(x.value_update, y.value_update);
            assert_eq!(x.chaos, y.chaos);
        }
        assert!(b.iter().any(|r| r.class != RequestClass::Interactive));
        assert!(b.iter().any(|r| r.deadline_us.is_some()));

        // Enabling only the deadline draw must not borrow draws from the
        // class guard (and vice versa): each axis is guarded independently.
        let deadlines_only = TrafficConfig {
            deadline_fraction: 0.5,
            deadline_range_us: (100, 1_000),
            ..calm.clone()
        };
        let classes_only = TrafficConfig {
            batch_fraction: 0.4,
            ..calm.clone()
        };
        let d = take(&deadlines_only, 3_000);
        let c = take(&classes_only, 3_000);
        assert!(d.iter().all(|r| r.class == RequestClass::Interactive));
        assert!(d.iter().any(|r| r.deadline_us.is_some()));
        assert!(c.iter().all(|r| r.deadline_us.is_none()));
        assert!(c.iter().any(|r| r.class == RequestClass::Batch));
    }

    #[test]
    fn identical_burst_scenario_pins_whole_bursts_and_replays() {
        let config = TrafficConfig::identical_burst(48, 0x1DE7);
        let requests = take(&config, 8_000);
        assert_eq!(requests, take(&config, 8_000), "stream must replay");
        // Inside a burst, an identical run repeats the matrix AND the
        // iteration count. With the fraction at 0.9 the overwhelming
        // majority of bursts are identical; count the pinned ones.
        let mut pinned_members = 0;
        let mut varied_members = 0;
        for pair in requests.windows(2) {
            if pair[1].burst_position > 0 {
                assert_eq!(pair[1].matrix_index, pair[0].matrix_index);
                if pair[1].iterations == pair[0].iterations {
                    pinned_members += 1;
                } else {
                    varied_members += 1;
                }
            }
        }
        assert!(
            pinned_members > 1_000,
            "expected many identical-burst members, saw {pinned_members}"
        );
        // The 10% non-identical bursts draw per member from the bimodal
        // mix, so some members must differ from their predecessor.
        assert!(
            varied_members > 10,
            "non-identical bursts must survive, saw {varied_members}"
        );
    }

    #[test]
    fn routing_storm_floods_cold_matrices_with_fully_identical_bursts() {
        let config = TrafficConfig::routing_storm(64, 0x5702);
        let requests = take(&config, 8_000);
        assert_eq!(requests, take(&config, 8_000), "stream must replay");
        // Every burst is identical (fraction 1.0): matrix and iterations
        // both repeat for the entire run.
        for pair in requests.windows(2) {
            if pair[1].burst_position > 0 {
                assert_eq!(pair[1].matrix_index, pair[0].matrix_index);
                assert_eq!(
                    pair[1].iterations, pair[0].iterations,
                    "a routing-storm burst must pin its iteration count"
                );
            }
        }
        assert!(
            requests.iter().any(|r| r.burst_position > 0),
            "the storm must contain bursts"
        );
        // The fresh draws stay cache-hostile: the whole corpus is touched.
        let mut seen = [false; 64];
        for r in &requests {
            seen[r.matrix_index] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn identity_draws_do_not_perturb_what_is_requested() {
        // The identity stream is split after every pre-existing one and
        // drawn only at burst openings: an identical-burst scenario keeps
        // its base's matrix choice, burst structure and annotations
        // bit-for-bit, differing only in iteration pinning.
        let base = TrafficConfig {
            burst_fraction: 0.45,
            max_burst_len: 12,
            ..TrafficConfig::skewed(64, 0xB45E)
        };
        let pinned = TrafficConfig {
            identical_burst_fraction: 0.9,
            ..base.clone()
        };
        let a = take(&base, 4_000);
        let b = take(&pinned, 4_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix_index, y.matrix_index);
            assert_eq!(x.burst_position, y.burst_position);
            assert_eq!(x.value_update, y.value_update);
            assert_eq!(x.chaos, y.chaos);
            assert_eq!(x.class, y.class);
            assert_eq!(x.deadline_us, y.deadline_us);
        }
        // The legacy scenarios themselves replay bit-identically: their
        // fraction is zero, so the identity stream is never drawn.
        assert_eq!(take(&TrafficConfig::skewed(64, 0xB45E), 4_000), {
            let legacy = TrafficConfig {
                identical_burst_fraction: 0.0,
                ..TrafficConfig::skewed(64, 0xB45E)
            };
            take(&legacy, 4_000)
        });
    }

    #[test]
    fn identical_bursts_suppress_value_updates_without_shifting_the_draw() {
        // Value updates are forced off inside an identical burst but the
        // mutation stream still advances, so every request *outside* the
        // pinned bursts mutates exactly when its calm base does.
        let base = TrafficConfig {
            burst_fraction: 0.45,
            max_burst_len: 12,
            value_update_fraction: 0.35,
            ..TrafficConfig::skewed(64, 0x3B1D)
        };
        let pinned = TrafficConfig {
            identical_burst_fraction: 1.0,
            ..base.clone()
        };
        let a = take(&base, 4_000);
        let b = take(&pinned, 4_000);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.matrix_index, y.matrix_index);
            assert_eq!(x.burst_position, y.burst_position);
            // Pinning only ever removes updates, never adds or moves them.
            if y.value_update {
                assert!(x.value_update);
            }
            if x.value_update && !y.value_update {
                // Suppressed updates are exactly the in-burst ones. The
                // opener of an identical burst is pinned too, so only a
                // non-burst singleton keeps every base update.
                assert!(
                    y.burst_position > 0 || x.burst_position == 0,
                    "suppression outside a burst member"
                );
            }
        }
        assert!(b.iter().any(|r| r.value_update), "updates survive pinning");
        assert!(
            b.iter().all(|r| !(r.value_update && r.burst_position > 0)),
            "no identical-burst member mutates mid-run"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty corpus")]
    fn empty_corpus_panics() {
        TrafficGenerator::new(&TrafficConfig::skewed(0, 1));
    }

    #[test]
    fn single_matrix_corpus_works() {
        for request in take(&TrafficConfig::smoke(1), 100) {
            assert_eq!(request.matrix_index, 0);
        }
    }
}
