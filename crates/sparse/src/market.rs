//! MatrixMarket (`.mtx`) reading and writing.
//!
//! The paper evaluates on the SuiteSparse Matrix Collection, which is
//! distributed as MatrixMarket files. The synthetic collection in
//! [`crate::collection`] stands in when SuiteSparse is not available, but
//! this module lets users point the whole pipeline at real `.mtx` files.
//!
//! Supported: `matrix coordinate {real,integer,pattern} {general,symmetric,skew-symmetric}`.
//! Complex matrices and dense (`array`) files are rejected with a parse error.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{CooMatrix, CsrMatrix, SparseError};

/// Symmetry declared in a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field declared in a MatrixMarket header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Reads a MatrixMarket coordinate file into a [`CooMatrix`].
///
/// Symmetric and skew-symmetric files are expanded to their full (general)
/// form, matching how SpMV libraries consume SuiteSparse matrices.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed content and
/// [`SparseError::Io`] for I/O failures.
pub fn read_coo<R: Read>(reader: R) -> Result<CooMatrix, SparseError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    let (header_line_no, header) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (idx + 1, line);
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: 0,
                    reason: "empty file".to_string(),
                })
            }
        }
    };

    let (field, symmetry) = parse_header(&header, header_line_no)?;

    // Skip comments and blank lines until the size line.
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((idx, line)) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (idx + 1, line);
            }
            None => {
                return Err(SparseError::Parse {
                    line: header_line_no,
                    reason: "missing size line".to_string(),
                })
            }
        }
    };

    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: size_line_no,
            reason: format!("expected 'rows cols nnz', found '{}'", size_line.trim()),
        });
    }
    let rows = parse_usize(dims[0], size_line_no)?;
    let cols = parse_usize(dims[1], size_line_no)?;
    let declared_nnz = parse_usize(dims[2], size_line_no)?;

    let mut coo = CooMatrix::with_capacity(rows, cols, declared_nnz);
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let line_no = idx + 1;
        let parts: Vec<&str> = trimmed.split_whitespace().collect();
        let min_parts = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() < min_parts {
            return Err(SparseError::Parse {
                line: line_no,
                reason: format!(
                    "expected at least {min_parts} fields, found {}",
                    parts.len()
                ),
            });
        }
        let r = parse_usize(parts[0], line_no)?;
        let c = parse_usize(parts[1], line_no)?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: line_no,
                reason: "matrixmarket indices are 1-based; found 0".to_string(),
            });
        }
        let value = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                parts[2].parse::<f64>().map_err(|e| SparseError::Parse {
                    line: line_no,
                    reason: format!("bad value '{}': {e}", parts[2]),
                })?
            }
        };
        coo.push(r - 1, c - 1, value)?;
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, value)?;
                }
            }
            Symmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, -value)?;
                }
            }
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::Parse {
            line: size_line_no,
            reason: format!("header declares {declared_nnz} entries but file contains {seen}"),
        });
    }
    Ok(coo)
}

/// Reads a MatrixMarket coordinate file into CSR form.
///
/// # Errors
///
/// See [`read_coo`].
pub fn read_csr<R: Read>(reader: R) -> Result<CsrMatrix, SparseError> {
    Ok(read_coo(reader)?.to_csr())
}

/// Reads a MatrixMarket file from a path into CSR form.
///
/// # Errors
///
/// See [`read_coo`]; additionally returns [`SparseError::Io`] if the file
/// cannot be opened.
pub fn read_csr_from_path<P: AsRef<Path>>(path: P) -> Result<CsrMatrix, SparseError> {
    let file = std::fs::File::open(path)?;
    read_csr(file)
}

/// Writes a matrix as a `matrix coordinate real general` MatrixMarket file.
///
/// # Errors
///
/// Returns [`SparseError::Io`] if writing fails.
pub fn write_csr<W: Write>(matrix: &CsrMatrix, mut writer: W) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% generated by seer-sparse")?;
    writeln!(
        writer,
        "{} {} {}",
        matrix.rows(),
        matrix.cols(),
        matrix.nnz()
    )?;
    for (r, c, v) in matrix.iter() {
        writeln!(writer, "{} {} {v:e}", r + 1, c + 1)?;
    }
    Ok(())
}

fn parse_header(header: &str, line_no: usize) -> Result<(Field, Symmetry), SparseError> {
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::Parse {
            line: line_no,
            reason: format!("not a matrixmarket header: '{}'", header.trim()),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: line_no,
            reason: format!(
                "unsupported storage format '{}' (only coordinate)",
                tokens[2]
            ),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                reason: format!("unsupported value field '{other}'"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => {
            return Err(SparseError::Parse {
                line: line_no,
                reason: format!("unsupported symmetry '{other}'"),
            })
        }
    };
    Ok((field, symmetry))
}

fn parse_usize(token: &str, line_no: usize) -> Result<usize, SparseError> {
    token.parse::<usize>().map_err(|e| SparseError::Parse {
        line: line_no,
        reason: format!("bad integer '{token}': {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GENERAL: &str = "%%MatrixMarket matrix coordinate real general\n\
        % a comment\n\
        3 3 4\n\
        1 1 1.0\n\
        1 3 2.0\n\
        2 2 3.0\n\
        3 1 4.0\n";

    #[test]
    fn read_general_real() {
        let csr = read_csr(GENERAL.as_bytes()).unwrap();
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.cols(), 3);
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.spmv(&[1.0, 1.0, 1.0]), vec![3.0, 3.0, 4.0]);
    }

    #[test]
    fn read_symmetric_expands() {
        let content = "%%MatrixMarket matrix coordinate real symmetric\n\
            2 2 2\n\
            1 1 5.0\n\
            2 1 7.0\n";
        let csr = read_csr(content.as_bytes()).unwrap();
        assert_eq!(csr.nnz(), 3);
        assert_eq!(csr.spmv(&[1.0, 1.0]), vec![12.0, 7.0]);
    }

    #[test]
    fn read_skew_symmetric_negates() {
        let content = "%%MatrixMarket matrix coordinate real skew-symmetric\n\
            2 2 1\n\
            2 1 3.0\n";
        let csr = read_csr(content.as_bytes()).unwrap();
        assert_eq!(csr.spmv(&[1.0, 1.0]), vec![-3.0, 3.0]);
    }

    #[test]
    fn read_pattern_uses_unit_values() {
        let content = "%%MatrixMarket matrix coordinate pattern general\n\
            2 2 2\n\
            1 2\n\
            2 1\n";
        let csr = read_csr(content.as_bytes()).unwrap();
        assert_eq!(csr.values(), &[1.0, 1.0]);
    }

    #[test]
    fn rejects_dense_array_format() {
        let content = "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n";
        let err = read_csr(content.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_complex_field() {
        let content = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 0.0\n";
        assert!(read_csr(content.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let content = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_csr(content.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let content = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_csr(content.as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { .. }));
    }

    #[test]
    fn rejects_empty_file() {
        assert!(read_csr("".as_bytes()).is_err());
    }

    #[test]
    fn write_then_read_round_trip() {
        let original = read_csr(GENERAL.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_csr(&original, &mut buf).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(original, back);
    }

    #[test]
    fn integer_field_parses() {
        let content = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 1 7\n";
        let csr = read_csr(content.as_bytes()).unwrap();
        assert_eq!(csr.values(), &[7.0]);
    }
}
