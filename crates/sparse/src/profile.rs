//! The fused one-pass matrix profile.
//!
//! Every consumer of per-matrix shape information — the eight kernel cost
//! models, the feature-collection kernels, the ELL conversion — used to run
//! its own sweep over the row offsets (and sometimes the column indices), so
//! one cold kernel-selection benchmark cost ~10 redundant traversals of the
//! same arrays. [`MatrixProfile`] computes the superset of everything those
//! consumers need in **one** traversal of `row_offsets`/`col_indices` and is
//! memoized on [`CsrMatrix`] behind a `OnceLock`, exactly like
//! [`CsrMatrix::content_fingerprint`]: the pass runs at most once per matrix
//! value, and cloning a matrix carries the cached profile along.
//!
//! Each quantity is accumulated with the same arithmetic (and the same
//! floating-point evaluation order) as the standalone derivation it replaces,
//! so the fused profile is bit-identical to the legacy per-consumer passes —
//! `tests/profile_equivalence.rs` pins that equivalence on the corpus and on
//! adversarial shapes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::RowStatsAccumulator;
use crate::{CsrMatrix, RowStats};

/// Number of fused profiling passes performed process-wide.
///
/// Purely observational: benchmarks and regression tests use deltas of this
/// counter to prove that a cold selection profiles a matrix exactly once and
/// that cached traffic never re-profiles.
static PROFILE_PASSES: AtomicU64 = AtomicU64::new(0);

/// Access-pattern and shape profile of a matrix, computed in a single fused
/// traversal and shared by every kernel cost model.
///
/// The first three fields keep the names (and the exact values) of the
/// original sampled profile so the kernel models read them unchanged; the
/// rest fold in the row statistics, the ELL padding ratio, the bandwidth and
/// the per-wavefront row groups that the kernels and the feature collector
/// used to recompute for themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Bytes of the dense `x` vector (`8 * cols`, clamped to one column).
    pub x_footprint_bytes: f64,
    /// Spatial locality of the column-index stream in `[0, 1]`; 1 means
    /// neighbouring nonzeros reference neighbouring columns (banded/stencil
    /// matrices), 0 means columns are scattered (graphs, random matrices).
    /// Estimated from at most [`MatrixProfile::LOCALITY_SAMPLES`] samples.
    pub gather_locality: f64,
    /// Average stored entries per row; used by adaptive bin sizing.
    pub avg_row_len: f64,
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Number of stored entries.
    pub nnz: usize,
    /// Full row-length / row-density statistics, bit-identical to
    /// [`RowStats::compute`].
    pub row_stats: RowStats,
    /// Fraction of padding slots an ELL conversion would introduce, in
    /// `[0, 1]` (0 for matrices with no stored entries).
    pub ell_padding_ratio: f64,
    /// Matrix bandwidth: the maximum `|row - col|` over stored entries.
    pub bandwidth: usize,
    /// `(max_row_len, sum_row_len)` per consecutive group of
    /// [`MatrixProfile::WAVEFRONT_GROUP`] rows — the two numbers the
    /// thread-mapped schedule needs per wavefront.
    pub wavefront_groups: Vec<(usize, usize)>,
}

impl MatrixProfile {
    /// Maximum number of nonzeros sampled when estimating locality.
    pub const LOCALITY_SAMPLES: usize = 4096;

    /// Row-group width of [`MatrixProfile::wavefront_groups`]: the wavefront
    /// size of the CDNA-class device model. Kernels running on a device with
    /// a different wavefront size fall back to a direct row-group scan.
    pub const WAVEFRONT_GROUP: usize = 64;

    /// Profiles `matrix` in one traversal of its row offsets and column
    /// indices.
    ///
    /// Prefer [`CsrMatrix::profile`], which memoizes the result on the
    /// matrix; this constructor always performs the pass (and bumps the
    /// process-wide pass counter).
    pub fn compute(matrix: &CsrMatrix) -> Self {
        PROFILE_PASSES.fetch_add(1, Ordering::Relaxed);
        let rows = matrix.rows();
        let cols = matrix.cols();
        let nnz = matrix.nnz();
        // The original sampled profile clamped both dimensions to 1 before
        // deriving ratios; keep the exact expressions so the fused values are
        // bit-identical.
        let rows_c = rows.max(1);
        let cols_c = cols.max(1);
        let row_offsets = matrix.row_offsets();
        let col_indices = matrix.col_indices();

        let step = if nnz == 0 {
            1
        } else {
            (nnz / Self::LOCALITY_SAMPLES).max(1)
        };
        let mut next_sample = 0usize;
        let mut sampled = 0usize;
        let mut distance_sum = 0.0f64;

        let mut stats_acc = RowStatsAccumulator::new();
        let mut bandwidth = 0usize;
        let mut wavefront_groups = Vec::with_capacity(rows.div_ceil(Self::WAVEFRONT_GROUP));
        let mut group_max = 0usize;
        let mut group_sum = 0usize;

        for row in 0..rows {
            let start = row_offsets[row];
            let end = row_offsets[row + 1];
            let len = end - start;
            stats_acc.push(len);

            group_max = group_max.max(len);
            group_sum += len;
            if (row + 1) % Self::WAVEFRONT_GROUP == 0 {
                wavefront_groups.push((group_max, group_sum));
                group_max = 0;
                group_sum = 0;
            }

            for &col in &col_indices[start..end] {
                bandwidth = bandwidth.max(row.abs_diff(col));
            }

            // Locality samples are strided nonzero indices; every sample in
            // `start..end` belongs to this row, and samples are consumed in
            // ascending order, so this reproduces the standalone scan's
            // row-tracking exactly.
            while next_sample < end {
                debug_assert!(next_sample >= start);
                let diag = (row as f64 / rows_c as f64) * cols_c as f64;
                let distance = (col_indices[next_sample] as f64 - diag).abs() / cols_c as f64;
                distance_sum += distance;
                sampled += 1;
                next_sample += step;
            }
        }
        if !rows.is_multiple_of(Self::WAVEFRONT_GROUP) {
            wavefront_groups.push((group_max, group_sum));
        }

        let gather_locality = if nnz == 0 {
            1.0
        } else {
            let mean_distance = if sampled == 0 {
                0.0
            } else {
                distance_sum / sampled as f64
            };
            (1.0 - 3.0 * mean_distance).clamp(0.0, 1.0)
        };

        let row_stats = stats_acc.finish(cols);
        let padded = row_stats.rows * row_stats.max_row_len;
        let ell_padding_ratio = if padded == 0 {
            0.0
        } else {
            1.0 - row_stats.nnz as f64 / padded as f64
        };

        Self {
            x_footprint_bytes: 8.0 * cols_c as f64,
            gather_locality,
            avg_row_len: nnz as f64 / rows_c as f64,
            rows,
            cols,
            nnz,
            row_stats,
            ell_padding_ratio,
            bandwidth,
            wavefront_groups,
        }
    }

    /// Length of the longest row.
    pub fn max_row_len(&self) -> usize {
        self.row_stats.max_row_len
    }

    /// Coefficient of variation of the row lengths (`stddev / mean`), the
    /// single-number load-imbalance proxy.
    pub fn imbalance(&self) -> f64 {
        self.row_stats.imbalance()
    }

    /// Number of fused profiling passes performed process-wide so far.
    pub fn passes() -> u64 {
        PROFILE_PASSES.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, SplitMix64};

    #[test]
    fn profile_matches_standalone_row_stats() {
        let mut rng = SplitMix64::new(11);
        let m = generators::skewed_rows(500, 3, 200, 0.05, &mut rng);
        let profile = MatrixProfile::compute(&m);
        assert_eq!(profile.row_stats, RowStats::compute(&m));
        assert_eq!(profile.max_row_len(), profile.row_stats.max_row_len);
        assert_eq!(profile.imbalance(), profile.row_stats.imbalance());
        assert_eq!(profile.nnz, m.nnz());
    }

    #[test]
    fn banded_matrix_has_high_locality_and_small_bandwidth() {
        let mut rng = SplitMix64::new(3);
        let banded = generators::banded(2000, 3, &mut rng);
        let profile = MatrixProfile::compute(&banded);
        assert!(
            profile.gather_locality > 0.9,
            "locality {}",
            profile.gather_locality
        );
        assert!(profile.bandwidth <= 3);
    }

    #[test]
    fn random_matrix_has_low_locality() {
        let mut rng = SplitMix64::new(4);
        let random = generators::uniform_random(2000, 2000, 0.005, &mut rng);
        let profile = MatrixProfile::compute(&random);
        assert!(
            profile.gather_locality < 0.4,
            "locality {}",
            profile.gather_locality
        );
        assert!(profile.bandwidth > 100);
    }

    #[test]
    fn empty_matrix_profile_is_benign() {
        let profile = MatrixProfile::compute(&CsrMatrix::zeros(10, 10));
        assert_eq!(profile.gather_locality, 1.0);
        assert_eq!(profile.avg_row_len, 0.0);
        assert_eq!(profile.ell_padding_ratio, 0.0);
        assert_eq!(profile.bandwidth, 0);
        assert_eq!(profile.wavefront_groups, vec![(0, 0)]);

        let degenerate = MatrixProfile::compute(&CsrMatrix::zeros(0, 0));
        assert_eq!(degenerate.x_footprint_bytes, 8.0);
        assert!(degenerate.wavefront_groups.is_empty());
        assert_eq!(degenerate.row_stats, RowStats::default());
    }

    #[test]
    fn wavefront_groups_cover_all_rows() {
        let mut rng = SplitMix64::new(6);
        let m = generators::power_law(257, 2.0, 32, &mut rng);
        let profile = MatrixProfile::compute(&m);
        assert_eq!(
            profile.wavefront_groups.len(),
            257usize.div_ceil(MatrixProfile::WAVEFRONT_GROUP)
        );
        let total: usize = profile.wavefront_groups.iter().map(|&(_, sum)| sum).sum();
        assert_eq!(total, m.nnz());
        for &(max, sum) in &profile.wavefront_groups {
            assert!(max * MatrixProfile::WAVEFRONT_GROUP >= sum);
        }
    }

    #[test]
    fn pass_counter_counts_computations() {
        let m = CsrMatrix::identity(64);
        let before = MatrixProfile::passes();
        let _ = MatrixProfile::compute(&m);
        let _ = MatrixProfile::compute(&m);
        assert!(MatrixProfile::passes() >= before + 2);
    }
}
