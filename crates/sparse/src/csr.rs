//! Compressed Sparse Row (CSR) matrices.

use std::sync::{Arc, OnceLock};

use crate::{CooMatrix, DenseMatrix, MatrixProfile, Scalar, SparseError};

/// A sparse matrix in Compressed Sparse Row format.
///
/// CSR stores, for an `m x n` matrix with `nnz` explicit entries:
///
/// * `row_offsets`: `m + 1` monotonically non-decreasing offsets into the
///   column/value arrays; row `i` occupies `row_offsets[i]..row_offsets[i+1]`,
/// * `col_indices`: `nnz` column indices, each `< n`,
/// * `values`: `nnz` scalar values.
///
/// CSR is the base representation for most of the load-balancing schedules in
/// the Seer SpMV case study (Table II of the paper); every other format in
/// this crate converts to and from it losslessly.
///
/// # Example
///
/// ```
/// use seer_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), seer_sparse::SparseError> {
/// // [ 1 0 2 ]
/// // [ 0 0 0 ]
/// // [ 0 3 4 ]
/// let a = CsrMatrix::try_new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = a.spmv(&[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 0.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<Scalar>,
    /// Lazily computed [`CsrMatrix::content_fingerprint`]. The matrix is
    /// immutable after construction, so the cached value can never go stale;
    /// cloning carries it along for free.
    fingerprint: OnceLock<u64>,
    /// Lazily computed fused [`MatrixProfile`], memoized like the
    /// fingerprint. `Arc` so long-lived caches (the Seer engine) can share
    /// the profile across regenerated identical matrices without re-running
    /// the pass.
    profile: OnceLock<Arc<MatrixProfile>>,
}

/// Equality is over the matrix content only; whether the fingerprint cache
/// has been populated is not observable.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_offsets == other.row_offsets
            && self.col_indices == other.col_indices
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidRowPointers`] when `row_offsets` does not
    /// have `rows + 1` entries, is not monotone, does not start at zero or
    /// does not end at `col_indices.len()`; [`SparseError::LengthMismatch`]
    /// when `col_indices` and `values` differ in length; and
    /// [`SparseError::IndexOutOfBounds`] when a column index is `>= cols`.
    pub fn try_new(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<Scalar>,
    ) -> Result<Self, SparseError> {
        if col_indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                left: "col_indices",
                left_len: col_indices.len(),
                right: "values",
                right_len: values.len(),
            });
        }
        if row_offsets.len() != rows + 1 {
            return Err(SparseError::InvalidRowPointers {
                reason: format!("expected {} offsets, found {}", rows + 1, row_offsets.len()),
            });
        }
        if row_offsets.first() != Some(&0) {
            return Err(SparseError::InvalidRowPointers {
                reason: "first offset must be 0".to_string(),
            });
        }
        if *row_offsets.last().expect("offsets are non-empty") != col_indices.len() {
            return Err(SparseError::InvalidRowPointers {
                reason: format!(
                    "last offset {} does not equal nnz {}",
                    row_offsets.last().unwrap(),
                    col_indices.len()
                ),
            });
        }
        if row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidRowPointers {
                reason: "offsets must be non-decreasing".to_string(),
            });
        }
        for (row, window) in row_offsets.windows(2).enumerate() {
            for &col in &col_indices[window[0]..window[1]] {
                if col >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row,
                        col,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
            fingerprint: OnceLock::new(),
            profile: OnceLock::new(),
        })
    }

    /// Builds an empty `rows x cols` matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_offsets: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
            fingerprint: OnceLock::new(),
            profile: OnceLock::new(),
        }
    }

    /// Builds the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_offsets: (0..=n).collect(),
            col_indices: (0..n).collect(),
            values: vec![1.0; n],
            fingerprint: OnceLock::new(),
            profile: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// The row-offset array (`rows + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// The column-index array (`nnz` entries).
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Number of stored entries in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_len(&self, row: usize) -> usize {
        self.row_offsets[row + 1] - self.row_offsets[row]
    }

    /// Returns `(col_indices, values)` slices for row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> (&[usize], &[Scalar]) {
        let span = self.row_offsets[row]..self.row_offsets[row + 1];
        (&self.col_indices[span.clone()], &self.values[span])
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Scalar)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Length of the longest row, answered from the memoized
    /// [`MatrixProfile`] so repeated queries (ELL conversion, kernel cost
    /// models) share one profiling pass.
    pub fn max_row_len(&self) -> usize {
        self.profile().max_row_len()
    }

    /// The fused one-pass [`MatrixProfile`] of this matrix.
    ///
    /// Computed lazily on first call and cached for the lifetime of the
    /// value, exactly like [`CsrMatrix::content_fingerprint`]; cloning the
    /// matrix carries the cached profile along.
    pub fn profile(&self) -> &MatrixProfile {
        self.profile_arc()
    }

    /// A shared handle to the memoized profile, for caches that outlive the
    /// matrix value (the Seer engine keys these by content fingerprint).
    pub fn profile_handle(&self) -> Arc<MatrixProfile> {
        Arc::clone(self.profile_arc())
    }

    /// Like [`CsrMatrix::profile_handle`], additionally reporting whether
    /// *this* call ran the profiling pass. The `OnceLock` runs its
    /// initializer at most once, so exactly one caller ever observes `true`
    /// per matrix value — race-free attribution for pass counters.
    pub fn profile_handle_tracked(&self) -> (Arc<MatrixProfile>, bool) {
        let mut computed = false;
        let arc = self.profile.get_or_init(|| {
            computed = true;
            Arc::new(MatrixProfile::compute(self))
        });
        (Arc::clone(arc), computed)
    }

    /// The memoized profile if the pass has already run, without triggering
    /// it. Lets profile caches count exactly how many passes they cause.
    pub fn cached_profile(&self) -> Option<Arc<MatrixProfile>> {
        self.profile.get().cloned()
    }

    fn profile_arc(&self) -> &Arc<MatrixProfile> {
        self.profile
            .get_or_init(|| Arc::new(MatrixProfile::compute(self)))
    }

    /// Reference sequential SpMV: `y = A * x`.
    ///
    /// This is the golden implementation every simulated GPU kernel is tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Scalar]) -> Vec<Scalar> {
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// SpMV into a caller-provided output buffer: `y = A * x` with no heap
    /// allocation.
    ///
    /// This is the execution hot path: the inner loop walks each row through
    /// slice iterators (one bounds check per row when slicing, none per
    /// nonzero), and a long-lived caller can reuse `y` across millions of
    /// requests. Every element of `y` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        assert_eq!(
            y.len(),
            self.rows,
            "output vector length must equal matrix rows"
        );
        // `windows(2)` hands each row its offset pair without per-row
        // indexing; the zipped slice iterators keep the nonzero loop free of
        // bounds checks (only the `x` gather is checked, as it must be).
        for (out, window) in y.iter_mut().zip(self.row_offsets.windows(2)) {
            let span = window[0]..window[1];
            let mut acc = 0.0;
            for (&c, &v) in self.col_indices[span.clone()]
                .iter()
                .zip(&self.values[span])
            {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Checked variant of [`CsrMatrix::spmv`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn try_spmv(&self, x: &[Scalar]) -> Result<Vec<Scalar>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        Ok(self.spmv(x))
    }

    /// Checked variant of [`CsrMatrix::spmv_into`], sharing the same core
    /// loop.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() !=
    /// self.cols()` or `y.len() != self.rows()`.
    pub fn try_spmv_into(&self, x: &[Scalar], y: &mut [Scalar]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
            });
        }
        self.spmv_into(x, y);
        Ok(())
    }

    /// Converts to a dense matrix (intended for tests and tiny inputs).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            *dense.get_mut(r, c) += v;
        }
        dense
    }

    /// Converts to coordinate (COO) format preserving row-major order.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("csr entries are in bounds");
        }
        coo
    }

    /// Consumes the matrix and returns `(rows, cols, row_offsets, col_indices, values)`.
    pub fn into_raw(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<Scalar>) {
        (
            self.rows,
            self.cols,
            self.row_offsets,
            self.col_indices,
            self.values,
        )
    }

    /// A 64-bit content fingerprint over the full explicit representation:
    /// dimensions, row offsets, column indices and the bit patterns of the
    /// values.
    ///
    /// Two matrices have the same fingerprint exactly when their CSR
    /// representations are identical (up to the astronomically unlikely hash
    /// collision), so the fingerprint can key caches of per-matrix derived
    /// data — the Seer engine uses it to memoize feature collections and
    /// selection plans. `CsrMatrix` has no mutating methods, so a fingerprint
    /// taken once stays valid for the lifetime of the value.
    ///
    /// The hash is a deterministic FNV-1a over the raw arrays; it makes no
    /// cryptographic claims. It is computed lazily on first call and cached,
    /// so repeated calls are O(1).
    pub fn content_fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            // One xor + multiply per 8-byte word (not per byte) keeps the
            // first-contact pass cheap on large matrices; the splitmix-style
            // finalizer restores the avalanche the word-wide mix gives up.
            let mut hash = FNV_OFFSET;
            let mut mix = |word: u64| {
                hash = (hash ^ word).wrapping_mul(FNV_PRIME);
            };
            mix(self.rows as u64);
            mix(self.cols as u64);
            mix(self.col_indices.len() as u64);
            for &offset in &self.row_offsets {
                mix(offset as u64);
            }
            for &col in &self.col_indices {
                mix(col as u64);
            }
            for &value in &self.values {
                mix(value.to_bits());
            }
            hash ^= hash >> 30;
            hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            hash ^= hash >> 27;
            hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
            hash ^ (hash >> 31)
        })
    }

    /// Expands the compressed row offsets into an explicit per-nonzero row
    /// index array — the COO row stream a coordinate kernel's preprocessing
    /// dispatch materializes on the device.
    ///
    /// Entry `i` of the result is the row that stored nonzero `i` belongs to,
    /// in row-major order, so zipping it with [`CsrMatrix::col_indices`] and
    /// [`CsrMatrix::values`] reproduces [`CsrMatrix::iter`] without any
    /// per-row slicing.
    pub fn expand_row_indices(&self) -> Vec<usize> {
        let mut rows = Vec::with_capacity(self.nnz());
        for (row, window) in self.row_offsets.windows(2).enumerate() {
            rows.resize(window[1], row);
        }
        rows
    }

    /// Total bytes occupied by the explicit representation (offsets, indices,
    /// values), as seen by the memory-traffic model in the GPU simulator.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }
}

impl From<CooMatrix> for CsrMatrix {
    fn from(coo: CooMatrix) -> Self {
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 3, 6],
            vec![0, 3, 1, 0, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_nnz() {
        let a = sample();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.row_len(0), 2);
        assert_eq!(a.row_len(1), 1);
        assert_eq!(a.row_len(2), 3);
        assert_eq!(a.max_row_len(), 3);
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let a = sample();
        let y = a.spmv(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0 + 8.0, 6.0, 4.0 + 15.0 + 24.0]);
    }

    #[test]
    fn try_spmv_rejects_bad_dimension() {
        let a = sample();
        let err = a.try_spmv(&[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            SparseError::DimensionMismatch {
                expected: 4,
                found: 2
            }
        );
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_wrong_offset_count() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_nonzero_first_offset() {
        let err = CsrMatrix::try_new(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_non_monotone_offsets() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_trailing_offset_not_nnz() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_column_out_of_bounds() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn identity_spmv_is_identity() {
        let eye = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(eye.spmv(&x), x);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(4, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.spmv(&[1.0; 7]), vec![0.0; 4]);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let a = sample();
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets[0], (0, 0, 1.0));
        assert_eq!(triplets.last().copied(), Some((2, 3, 6.0)));
        assert_eq!(triplets.len(), a.nnz());
    }

    #[test]
    fn dense_round_trip_matches() {
        let a = sample();
        let dense = a.to_dense();
        for (r, c, v) in a.iter() {
            assert_eq!(dense.get(r, c), v);
        }
        assert_eq!(dense.get(1, 0), 0.0);
    }

    #[test]
    fn coo_round_trip_preserves_spmv() {
        let a = sample();
        let back: CsrMatrix = a.to_coo().into();
        let x = vec![0.5, -1.0, 2.0, 3.0];
        assert_eq!(a.spmv(&x), back.spmv(&x));
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());

        // Any difference in values, structure or shape changes the hash.
        let mut values = a.values().to_vec();
        values[0] += 1.0;
        let changed_value = CsrMatrix::try_new(
            3,
            4,
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            values,
        )
        .unwrap();
        assert_ne!(a.content_fingerprint(), changed_value.content_fingerprint());

        let mut cols = a.col_indices().to_vec();
        cols[0] = 1;
        let changed_structure =
            CsrMatrix::try_new(3, 4, a.row_offsets().to_vec(), cols, a.values().to_vec()).unwrap();
        assert_ne!(
            a.content_fingerprint(),
            changed_structure.content_fingerprint()
        );

        assert_ne!(
            CsrMatrix::identity(5).content_fingerprint(),
            CsrMatrix::identity(6).content_fingerprint()
        );
        assert_ne!(
            CsrMatrix::zeros(2, 3).content_fingerprint(),
            CsrMatrix::zeros(3, 2).content_fingerprint()
        );
    }

    #[test]
    fn expand_row_indices_matches_iter() {
        let a = sample();
        let expanded = a.expand_row_indices();
        let from_iter: Vec<usize> = a.iter().map(|(r, _, _)| r).collect();
        assert_eq!(expanded, from_iter);
        assert_eq!(expanded, vec![0, 0, 1, 2, 2, 2]);
        assert!(CsrMatrix::zeros(3, 3).expand_row_indices().is_empty());
        assert!(CsrMatrix::zeros(0, 0).expand_row_indices().is_empty());
    }

    #[test]
    fn memory_footprint_counts_all_arrays() {
        let a = sample();
        let expected = 4 * 8 + 6 * 8 + 6 * 8;
        assert_eq!(a.memory_footprint_bytes(), expected);
    }
}
