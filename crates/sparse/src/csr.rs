//! Compressed Sparse Row (CSR) matrices.

use std::sync::{Arc, OnceLock};

use crate::signature::StructureSignature;
use crate::{CooMatrix, DenseMatrix, MatrixProfile, Scalar, SparseError};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Splitmix-style avalanche finalizer shared by all three fingerprints; the
/// word-wide FNV mix is cheap but weak on its own.
#[inline]
fn finalize_hash(mut hash: u64) -> u64 {
    hash ^= hash >> 30;
    hash = hash.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    hash ^= hash >> 27;
    hash = hash.wrapping_mul(0x94d0_49bb_1331_11eb);
    hash ^ (hash >> 31)
}

/// A sparse matrix in Compressed Sparse Row format.
///
/// CSR stores, for an `m x n` matrix with `nnz` explicit entries:
///
/// * `row_offsets`: `m + 1` monotonically non-decreasing offsets into the
///   column/value arrays; row `i` occupies `row_offsets[i]..row_offsets[i+1]`,
/// * `col_indices`: `nnz` column indices, each `< n`,
/// * `values`: `nnz` scalar values.
///
/// CSR is the base representation for most of the load-balancing schedules in
/// the Seer SpMV case study (Table II of the paper); every other format in
/// this crate converts to and from it losslessly.
///
/// # Example
///
/// ```
/// use seer_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), seer_sparse::SparseError> {
/// // [ 1 0 2 ]
/// // [ 0 0 0 ]
/// // [ 0 3 4 ]
/// let a = CsrMatrix::try_new(3, 3, vec![0, 2, 2, 4], vec![0, 2, 1, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = a.spmv(&[1.0, 1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 0.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<Scalar>,
    /// Lazily computed [`CsrMatrix::content_fingerprint`]. The buffers are
    /// only reachable through the checked mutation APIs
    /// ([`CsrMatrix::update_values`] and the structural
    /// [`CsrMatrix::into_delta`] builder), each of which resets exactly the
    /// memos its edit can stale, so a cached value never lies; cloning
    /// carries it along for free.
    fingerprint: OnceLock<u64>,
    /// Lazily computed [`CsrMatrix::sparsity_fingerprint`]: dimensions, row
    /// offsets and column indices only. Survives value-only mutation.
    sparsity: OnceLock<u64>,
    /// Lazily computed [`CsrMatrix::values_fingerprint`]: the value bits
    /// only. Reset by [`CsrMatrix::update_values`].
    values_fp: OnceLock<u64>,
    /// Lazily computed fused [`MatrixProfile`], memoized like the
    /// fingerprint. `Arc` so long-lived caches (the Seer engine) can share
    /// the profile across regenerated identical matrices without re-running
    /// the pass. The profile reads only the sparsity arrays, so it survives
    /// value-only mutation.
    profile: OnceLock<Arc<MatrixProfile>>,
    /// Lazily computed quantized [`StructureSignature`], sparsity-only like
    /// the profile; survives value-only mutation.
    signature: OnceLock<StructureSignature>,
}

/// Equality is over the matrix content only; whether the fingerprint cache
/// has been populated is not observable.
impl PartialEq for CsrMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_offsets == other.row_offsets
            && self.col_indices == other.col_indices
            && self.values == other.values
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix after validating every structural invariant.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidRowPointers`] when `row_offsets` does not
    /// have `rows + 1` entries, is not monotone, does not start at zero or
    /// does not end at `col_indices.len()`; [`SparseError::LengthMismatch`]
    /// when `col_indices` and `values` differ in length; and
    /// [`SparseError::IndexOutOfBounds`] when a column index is `>= cols`.
    pub fn try_new(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<Scalar>,
    ) -> Result<Self, SparseError> {
        if col_indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                left: "col_indices",
                left_len: col_indices.len(),
                right: "values",
                right_len: values.len(),
            });
        }
        if row_offsets.len() != rows + 1 {
            return Err(SparseError::InvalidRowPointers {
                reason: format!("expected {} offsets, found {}", rows + 1, row_offsets.len()),
            });
        }
        if row_offsets.first() != Some(&0) {
            return Err(SparseError::InvalidRowPointers {
                reason: "first offset must be 0".to_string(),
            });
        }
        if *row_offsets.last().expect("offsets are non-empty") != col_indices.len() {
            return Err(SparseError::InvalidRowPointers {
                reason: format!(
                    "last offset {} does not equal nnz {}",
                    row_offsets.last().unwrap(),
                    col_indices.len()
                ),
            });
        }
        if row_offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidRowPointers {
                reason: "offsets must be non-decreasing".to_string(),
            });
        }
        for (row, window) in row_offsets.windows(2).enumerate() {
            for &col in &col_indices[window[0]..window[1]] {
                if col >= cols {
                    return Err(SparseError::IndexOutOfBounds {
                        row,
                        col,
                        rows,
                        cols,
                    });
                }
            }
        }
        Ok(Self::assemble(rows, cols, row_offsets, col_indices, values))
    }

    /// Wraps already-validated raw arrays with fresh memoization state.
    fn assemble(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<Scalar>,
    ) -> Self {
        Self {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
            fingerprint: OnceLock::new(),
            sparsity: OnceLock::new(),
            values_fp: OnceLock::new(),
            profile: OnceLock::new(),
            signature: OnceLock::new(),
        }
    }

    /// Builds an empty `rows x cols` matrix with no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::assemble(rows, cols, vec![0; rows + 1], Vec::new(), Vec::new())
    }

    /// Builds the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::assemble(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.col_indices.len()
    }

    /// The row-offset array (`rows + 1` entries).
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// The column-index array (`nnz` entries).
    pub fn col_indices(&self) -> &[usize] {
        &self.col_indices
    }

    /// The value array (`nnz` entries).
    pub fn values(&self) -> &[Scalar] {
        &self.values
    }

    /// Number of stored entries in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_len(&self, row: usize) -> usize {
        self.row_offsets[row + 1] - self.row_offsets[row]
    }

    /// Returns `(col_indices, values)` slices for row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> (&[usize], &[Scalar]) {
        let span = self.row_offsets[row]..self.row_offsets[row + 1];
        (&self.col_indices[span.clone()], &self.values[span])
    }

    /// Iterates over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Scalar)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Length of the longest row, answered from the memoized
    /// [`MatrixProfile`] so repeated queries (ELL conversion, kernel cost
    /// models) share one profiling pass.
    pub fn max_row_len(&self) -> usize {
        self.profile().max_row_len()
    }

    /// The fused one-pass [`MatrixProfile`] of this matrix.
    ///
    /// Computed lazily on first call and cached for the lifetime of the
    /// value, exactly like [`CsrMatrix::content_fingerprint`]; cloning the
    /// matrix carries the cached profile along.
    pub fn profile(&self) -> &MatrixProfile {
        self.profile_arc()
    }

    /// A shared handle to the memoized profile, for caches that outlive the
    /// matrix value (the Seer engine keys these by content fingerprint).
    pub fn profile_handle(&self) -> Arc<MatrixProfile> {
        Arc::clone(self.profile_arc())
    }

    /// Like [`CsrMatrix::profile_handle`], additionally reporting whether
    /// *this* call ran the profiling pass. The `OnceLock` runs its
    /// initializer at most once, so exactly one caller ever observes `true`
    /// per matrix value — race-free attribution for pass counters.
    pub fn profile_handle_tracked(&self) -> (Arc<MatrixProfile>, bool) {
        let mut computed = false;
        let arc = self.profile.get_or_init(|| {
            computed = true;
            Arc::new(MatrixProfile::compute(self))
        });
        (Arc::clone(arc), computed)
    }

    /// The memoized profile if the pass has already run, without triggering
    /// it. Lets profile caches count exactly how many passes they cause.
    pub fn cached_profile(&self) -> Option<Arc<MatrixProfile>> {
        self.profile.get().cloned()
    }

    fn profile_arc(&self) -> &Arc<MatrixProfile> {
        self.profile
            .get_or_init(|| Arc::new(MatrixProfile::compute(self)))
    }

    /// Reference sequential SpMV: `y = A * x`.
    ///
    /// This is the golden implementation every simulated GPU kernel is tested
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[Scalar]) -> Vec<Scalar> {
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// SpMV into a caller-provided output buffer: `y = A * x` with no heap
    /// allocation.
    ///
    /// This is the execution hot path: the inner loop walks each row through
    /// slice iterators (one bounds check per row when slicing, none per
    /// nonzero), and a long-lived caller can reuse `y` across millions of
    /// requests. Every element of `y` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn spmv_into(&self, x: &[Scalar], y: &mut [Scalar]) {
        assert_eq!(
            x.len(),
            self.cols,
            "input vector length must equal matrix columns"
        );
        assert_eq!(
            y.len(),
            self.rows,
            "output vector length must equal matrix rows"
        );
        // `windows(2)` hands each row its offset pair without per-row
        // indexing; the zipped slice iterators keep the nonzero loop free of
        // bounds checks (only the `x` gather is checked, as it must be).
        for (out, window) in y.iter_mut().zip(self.row_offsets.windows(2)) {
            let span = window[0]..window[1];
            let mut acc = 0.0;
            for (&c, &v) in self.col_indices[span.clone()]
                .iter()
                .zip(&self.values[span])
            {
                acc += v * x[c];
            }
            *out = acc;
        }
    }

    /// Checked variant of [`CsrMatrix::spmv`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() != self.cols()`.
    pub fn try_spmv(&self, x: &[Scalar]) -> Result<Vec<Scalar>, SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        Ok(self.spmv(x))
    }

    /// Checked variant of [`CsrMatrix::spmv_into`], sharing the same core
    /// loop.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when `x.len() !=
    /// self.cols()` or `y.len() != self.rows()`.
    pub fn try_spmv_into(&self, x: &[Scalar], y: &mut [Scalar]) -> Result<(), SparseError> {
        if x.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                expected: self.cols,
                found: x.len(),
            });
        }
        if y.len() != self.rows {
            return Err(SparseError::DimensionMismatch {
                expected: self.rows,
                found: y.len(),
            });
        }
        self.spmv_into(x, y);
        Ok(())
    }

    /// Converts to a dense matrix (intended for tests and tiny inputs).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut dense = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            *dense.get_mut(r, c) += v;
        }
        dense
    }

    /// Converts to coordinate (COO) format preserving row-major order.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, v).expect("csr entries are in bounds");
        }
        coo
    }

    /// Consumes the matrix and returns `(rows, cols, row_offsets, col_indices, values)`.
    pub fn into_raw(self) -> (usize, usize, Vec<usize>, Vec<usize>, Vec<Scalar>) {
        (
            self.rows,
            self.cols,
            self.row_offsets,
            self.col_indices,
            self.values,
        )
    }

    /// A 64-bit fingerprint of the sparsity pattern only: dimensions, row
    /// offsets and column indices — everything the [`MatrixProfile`], the
    /// kernel cost models and almost every prepared structure depend on.
    ///
    /// Two matrices share a sparsity fingerprint exactly when their structure
    /// is identical (up to the astronomically unlikely hash collision), so
    /// caches of structure-derived data — profiles, feature vectors,
    /// selection plans, merge-path tables — can key on it and survive
    /// value-only mutation via [`CsrMatrix::update_values`].
    ///
    /// The hash is a deterministic word-wise FNV-1a with a splitmix-style
    /// finalizer; it makes no cryptographic claims. Computed lazily on first
    /// call and cached, so repeated calls are O(1).
    pub fn sparsity_fingerprint(&self) -> u64 {
        *self.sparsity.get_or_init(|| {
            // One xor + multiply per 8-byte word (not per byte) keeps the
            // first-contact pass cheap on large matrices; the splitmix-style
            // finalizer restores the avalanche the word-wide mix gives up.
            let mut hash = FNV_OFFSET;
            let mut mix = |word: u64| {
                hash = (hash ^ word).wrapping_mul(FNV_PRIME);
            };
            mix(self.rows as u64);
            mix(self.cols as u64);
            mix(self.col_indices.len() as u64);
            for &offset in &self.row_offsets {
                mix(offset as u64);
            }
            for &col in &self.col_indices {
                mix(col as u64);
            }
            finalize_hash(hash)
        })
    }

    /// A 64-bit fingerprint of the value bits only, the complement of
    /// [`CsrMatrix::sparsity_fingerprint`]. Keys the rare prepared artifacts
    /// that embed values (the ELL slab) so a value mutation invalidates them
    /// — and nothing else. Reset by [`CsrMatrix::update_values`].
    pub fn values_fingerprint(&self) -> u64 {
        *self.values_fp.get_or_init(|| {
            let mut hash = FNV_OFFSET;
            let mut mix = |word: u64| {
                hash = (hash ^ word).wrapping_mul(FNV_PRIME);
            };
            mix(self.values.len() as u64);
            for &value in &self.values {
                mix(value.to_bits());
            }
            finalize_hash(hash)
        })
    }

    /// A 64-bit content fingerprint over the full explicit representation,
    /// combining [`CsrMatrix::sparsity_fingerprint`] and
    /// [`CsrMatrix::values_fingerprint`].
    ///
    /// Two matrices have the same fingerprint exactly when their CSR
    /// representations are identical (up to the astronomically unlikely hash
    /// collision), so the fingerprint can key caches of per-matrix derived
    /// data that depend on the complete value — request routing, exact replay
    /// checks. A fingerprint taken once stays valid until a mutation API
    /// resets it.
    pub fn content_fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut hash = FNV_OFFSET;
            let mut mix = |word: u64| {
                hash = (hash ^ word).wrapping_mul(FNV_PRIME);
            };
            mix(self.sparsity_fingerprint());
            mix(self.values_fingerprint());
            finalize_hash(hash)
        })
    }

    /// The quantized [`StructureSignature`] of this matrix's sparsity
    /// pattern, memoized like the profile. Structurally similar matrices —
    /// the same generator family at a nearby seed, a value-mutated copy —
    /// collapse onto the same signature, which is what the engine's
    /// structure-class index keys on.
    pub fn structure_signature(&self) -> StructureSignature {
        *self
            .signature
            .get_or_init(|| StructureSignature::probe(self))
    }

    /// Replaces the stored values in place, preserving the sparsity pattern.
    ///
    /// This is the sparsity-preserving half of the mutation API: the row
    /// offsets and column indices are untouched, so the memoized
    /// [`MatrixProfile`], [`CsrMatrix::sparsity_fingerprint`] and
    /// [`CsrMatrix::structure_signature`] all remain valid and are kept; only
    /// the values and content fingerprints are reset. Engine caches keyed on
    /// the sparsity fingerprint therefore stay warm across the update —
    /// a solver loop mutating its operand pays zero profile passes and zero
    /// plan rebuilds (except the values-embedding ELL slab, which re-keys on
    /// [`CsrMatrix::values_fingerprint`] and refreshes itself).
    ///
    /// Structural edits (changing which entries are stored) must go through
    /// [`CsrMatrix::into_delta`] instead, which produces a fresh value with
    /// fresh memoization state.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::LengthMismatch`] when `new_values.len() !=
    /// self.nnz()`; the matrix is unchanged in that case.
    pub fn update_values(&mut self, new_values: &[Scalar]) -> Result<(), SparseError> {
        if new_values.len() != self.values.len() {
            return Err(SparseError::LengthMismatch {
                left: "values",
                left_len: self.values.len(),
                right: "new_values",
                right_len: new_values.len(),
            });
        }
        self.values.copy_from_slice(new_values);
        // Only the value-dependent memos can go stale; the sparsity
        // fingerprint, profile and signature read nothing this touched.
        self.values_fp = OnceLock::new();
        self.fingerprint = OnceLock::new();
        Ok(())
    }

    /// Applies `f` to every stored entry's value in place, preserving the
    /// sparsity pattern. Same invalidation contract as
    /// [`CsrMatrix::update_values`]: sparsity-keyed memos survive, the value
    /// and content fingerprints reset.
    ///
    /// `f` receives `(row, col, value)` and returns the replacement value.
    pub fn map_values(&mut self, mut f: impl FnMut(usize, usize, Scalar) -> Scalar) {
        for (row, window) in self.row_offsets.windows(2).enumerate() {
            for idx in window[0]..window[1] {
                self.values[idx] = f(row, self.col_indices[idx], self.values[idx]);
            }
        }
        self.values_fp = OnceLock::new();
        self.fingerprint = OnceLock::new();
    }

    /// Begins a structural delta: consumes the matrix and returns a builder
    /// over its raw arrays.
    ///
    /// This is the structural half of the mutation API. A structural edit
    /// changes what the sparsity fingerprint covers, so instead of mutating
    /// in place (and having to hunt down every stale memo), the builder
    /// re-validates and re-assembles a brand-new value with fresh
    /// memoization state via [`CsrDelta::finish`]. The old sparsity key
    /// simply stops arriving — the narrow invalidation the engine's
    /// byte-budgeted caches rely on.
    pub fn into_delta(self) -> CsrDelta {
        CsrDelta {
            rows: self.rows,
            cols: self.cols,
            row_offsets: self.row_offsets,
            col_indices: self.col_indices,
            values: self.values,
        }
    }

    /// Expands the compressed row offsets into an explicit per-nonzero row
    /// index array — the COO row stream a coordinate kernel's preprocessing
    /// dispatch materializes on the device.
    ///
    /// Entry `i` of the result is the row that stored nonzero `i` belongs to,
    /// in row-major order, so zipping it with [`CsrMatrix::col_indices`] and
    /// [`CsrMatrix::values`] reproduces [`CsrMatrix::iter`] without any
    /// per-row slicing.
    pub fn expand_row_indices(&self) -> Vec<usize> {
        let mut rows = Vec::with_capacity(self.nnz());
        for (row, window) in self.row_offsets.windows(2).enumerate() {
            rows.resize(window[1], row);
        }
        rows
    }

    /// Total bytes occupied by the explicit representation (offsets, indices,
    /// values), as seen by the memory-traffic model in the GPU simulator.
    pub fn memory_footprint_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Scalar>()
    }
}

impl From<CooMatrix> for CsrMatrix {
    fn from(coo: CooMatrix) -> Self {
        coo.to_csr()
    }
}

/// A structural-delta builder over a consumed [`CsrMatrix`]'s raw arrays.
///
/// Created by [`CsrMatrix::into_delta`]; edits accumulate on the raw CSR
/// arrays and [`CsrDelta::finish`] re-validates everything through
/// [`CsrMatrix::try_new`], producing a matrix whose memoized
/// fingerprints/profile/signature start empty. See the invalidation contract
/// on [`CsrMatrix::update_values`].
#[derive(Debug, Clone)]
pub struct CsrDelta {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<Scalar>,
}

impl CsrDelta {
    /// Replaces row `row` with the given `(column, value)` entries, shifting
    /// later rows as needed. Columns should be ascending to keep the usual
    /// CSR ordering (not enforced — [`CsrMatrix::try_new`] does not require
    /// it either).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `cols` and `vals` differ in length.
    pub fn set_row(&mut self, row: usize, cols: &[usize], vals: &[Scalar]) -> &mut Self {
        assert!(
            row < self.rows,
            "row {row} out of range ({} rows)",
            self.rows
        );
        assert_eq!(cols.len(), vals.len(), "column/value length mismatch");
        let span = self.row_offsets[row]..self.row_offsets[row + 1];
        let delta = cols.len() as isize - span.len() as isize;
        self.col_indices.splice(span.clone(), cols.iter().copied());
        self.values.splice(span, vals.iter().copied());
        for offset in &mut self.row_offsets[row + 1..] {
            *offset = offset.checked_add_signed(delta).expect("offset overflow");
        }
        self
    }

    /// Validates the edited arrays and assembles the new matrix.
    ///
    /// # Errors
    ///
    /// Returns the same [`SparseError`] variants as [`CsrMatrix::try_new`]
    /// when an edit left the arrays inconsistent (e.g. a column index past
    /// `cols`).
    pub fn finish(self) -> Result<CsrMatrix, SparseError> {
        CsrMatrix::try_new(
            self.rows,
            self.cols,
            self.row_offsets,
            self.col_indices,
            self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 3, 6],
            vec![0, 3, 1, 0, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_nnz() {
        let a = sample();
        assert_eq!(a.rows(), 3);
        assert_eq!(a.cols(), 4);
        assert_eq!(a.nnz(), 6);
        assert_eq!(a.row_len(0), 2);
        assert_eq!(a.row_len(1), 1);
        assert_eq!(a.row_len(2), 3);
        assert_eq!(a.max_row_len(), 3);
    }

    #[test]
    fn spmv_matches_hand_computation() {
        let a = sample();
        let y = a.spmv(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![1.0 + 8.0, 6.0, 4.0 + 15.0 + 24.0]);
    }

    #[test]
    fn try_spmv_rejects_bad_dimension() {
        let a = sample();
        let err = a.try_spmv(&[1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            SparseError::DimensionMismatch {
                expected: 4,
                found: 2
            }
        );
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![0], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_wrong_offset_count() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 1], vec![0], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_nonzero_first_offset() {
        let err = CsrMatrix::try_new(1, 2, vec![1, 1], vec![], vec![]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_non_monotone_offsets() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_trailing_offset_not_nnz() {
        let err = CsrMatrix::try_new(2, 2, vec![0, 1, 3], vec![0, 1], vec![1.0, 1.0]).unwrap_err();
        assert!(matches!(err, SparseError::InvalidRowPointers { .. }));
    }

    #[test]
    fn rejects_column_out_of_bounds() {
        let err = CsrMatrix::try_new(1, 2, vec![0, 1], vec![5], vec![1.0]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { col: 5, .. }));
    }

    #[test]
    fn identity_spmv_is_identity() {
        let eye = CsrMatrix::identity(5);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(eye.spmv(&x), x);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(4, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.spmv(&[1.0; 7]), vec![0.0; 4]);
    }

    #[test]
    fn iter_yields_row_major_triplets() {
        let a = sample();
        let triplets: Vec<_> = a.iter().collect();
        assert_eq!(triplets[0], (0, 0, 1.0));
        assert_eq!(triplets.last().copied(), Some((2, 3, 6.0)));
        assert_eq!(triplets.len(), a.nnz());
    }

    #[test]
    fn dense_round_trip_matches() {
        let a = sample();
        let dense = a.to_dense();
        for (r, c, v) in a.iter() {
            assert_eq!(dense.get(r, c), v);
        }
        assert_eq!(dense.get(1, 0), 0.0);
    }

    #[test]
    fn coo_round_trip_preserves_spmv() {
        let a = sample();
        let back: CsrMatrix = a.to_coo().into();
        let x = vec![0.5, -1.0, 2.0, 3.0];
        assert_eq!(a.spmv(&x), back.spmv(&x));
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());

        // Any difference in values, structure or shape changes the hash.
        let mut values = a.values().to_vec();
        values[0] += 1.0;
        let changed_value = CsrMatrix::try_new(
            3,
            4,
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            values,
        )
        .unwrap();
        assert_ne!(a.content_fingerprint(), changed_value.content_fingerprint());

        let mut cols = a.col_indices().to_vec();
        cols[0] = 1;
        let changed_structure =
            CsrMatrix::try_new(3, 4, a.row_offsets().to_vec(), cols, a.values().to_vec()).unwrap();
        assert_ne!(
            a.content_fingerprint(),
            changed_structure.content_fingerprint()
        );

        assert_ne!(
            CsrMatrix::identity(5).content_fingerprint(),
            CsrMatrix::identity(6).content_fingerprint()
        );
        assert_ne!(
            CsrMatrix::zeros(2, 3).content_fingerprint(),
            CsrMatrix::zeros(3, 2).content_fingerprint()
        );
    }

    #[test]
    fn expand_row_indices_matches_iter() {
        let a = sample();
        let expanded = a.expand_row_indices();
        let from_iter: Vec<usize> = a.iter().map(|(r, _, _)| r).collect();
        assert_eq!(expanded, from_iter);
        assert_eq!(expanded, vec![0, 0, 1, 2, 2, 2]);
        assert!(CsrMatrix::zeros(3, 3).expand_row_indices().is_empty());
        assert!(CsrMatrix::zeros(0, 0).expand_row_indices().is_empty());
    }

    #[test]
    fn memory_footprint_counts_all_arrays() {
        let a = sample();
        let expected = 4 * 8 + 6 * 8 + 6 * 8;
        assert_eq!(a.memory_footprint_bytes(), expected);
    }

    #[test]
    fn fingerprint_split_separates_sparsity_from_values() {
        let a = sample();
        let mut values = a.values().to_vec();
        values[0] += 1.0;
        let changed_value = CsrMatrix::try_new(
            3,
            4,
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            values,
        )
        .unwrap();
        // Same structure: sparsity key agrees, values and content keys don't.
        assert_eq!(
            a.sparsity_fingerprint(),
            changed_value.sparsity_fingerprint()
        );
        assert_ne!(a.values_fingerprint(), changed_value.values_fingerprint());
        assert_ne!(a.content_fingerprint(), changed_value.content_fingerprint());

        let mut cols = a.col_indices().to_vec();
        cols[0] = 1;
        let changed_structure =
            CsrMatrix::try_new(3, 4, a.row_offsets().to_vec(), cols, a.values().to_vec()).unwrap();
        // Same values, different structure: the values key agrees, the
        // sparsity and content keys don't.
        assert_eq!(
            a.values_fingerprint(),
            changed_structure.values_fingerprint()
        );
        assert_ne!(
            a.sparsity_fingerprint(),
            changed_structure.sparsity_fingerprint()
        );
        assert_ne!(
            a.content_fingerprint(),
            changed_structure.content_fingerprint()
        );
    }

    #[test]
    fn update_values_keeps_sparsity_memos_and_resets_value_memos() {
        let mut a = sample();
        let sparsity = a.sparsity_fingerprint();
        let values_fp = a.values_fingerprint();
        let content = a.content_fingerprint();
        let signature = a.structure_signature();
        let profile = a.profile_handle();

        let new_values: Vec<f64> = a.values().iter().map(|v| v * 2.0).collect();
        a.update_values(&new_values).unwrap();

        assert_eq!(a.values(), new_values.as_slice());
        assert_eq!(a.sparsity_fingerprint(), sparsity);
        assert_ne!(a.values_fingerprint(), values_fp);
        assert_ne!(a.content_fingerprint(), content);
        assert_eq!(a.structure_signature(), signature);
        // The profile memo survived: same Arc, no second pass.
        assert!(Arc::ptr_eq(&profile, &a.profile_handle()));

        // The refreshed fingerprints match a from-scratch matrix with the
        // same content.
        let fresh = CsrMatrix::try_new(
            3,
            4,
            a.row_offsets().to_vec(),
            a.col_indices().to_vec(),
            new_values,
        )
        .unwrap();
        assert_eq!(a.values_fingerprint(), fresh.values_fingerprint());
        assert_eq!(a.content_fingerprint(), fresh.content_fingerprint());
        assert_eq!(a.sparsity_fingerprint(), fresh.sparsity_fingerprint());
    }

    #[test]
    fn update_values_rejects_wrong_length_and_leaves_matrix_unchanged() {
        let mut a = sample();
        let before = a.clone();
        let err = a.update_values(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::LengthMismatch { .. }));
        assert_eq!(a, before);
    }

    #[test]
    fn map_values_transforms_in_place() {
        let mut a = sample();
        let spmv_before = a.spmv(&[1.0, 1.0, 1.0, 1.0]);
        a.map_values(|_r, _c, v| v * 3.0);
        let spmv_after = a.spmv(&[1.0, 1.0, 1.0, 1.0]);
        for (before, after) in spmv_before.iter().zip(&spmv_after) {
            assert_eq!(*after, before * 3.0);
        }
        // map_values saw the right coordinates.
        let mut b = sample();
        b.map_values(|r, c, _v| (r * 10 + c) as f64);
        for (r, c, v) in b.iter() {
            assert_eq!(v, (r * 10 + c) as f64);
        }
    }

    #[test]
    fn delta_set_row_rebuilds_a_valid_matrix() {
        let a = sample();
        let dense_before = a.to_dense();
        let mut delta = a.into_delta();
        delta.set_row(1, &[0, 2, 3], &[7.0, 8.0, 9.0]);
        let b = delta.finish().unwrap();
        assert_eq!(b.nnz(), 8);
        assert_eq!(b.row(1), (&[0usize, 2, 3][..], &[7.0, 8.0, 9.0][..]));
        // Untouched rows carry over.
        for r in [0usize, 2] {
            for (c, (dc, dv)) in b
                .row(r)
                .0
                .iter()
                .zip(b.row(r).0.iter().zip(b.row(r).1.iter()))
            {
                assert_eq!(c, dc);
                assert_eq!(dense_before.get(r, *dc), *dv);
            }
        }

        // Shrinking a row works too.
        let mut delta = b.clone().into_delta();
        delta.set_row(1, &[], &[]);
        let c = delta.finish().unwrap();
        assert_eq!(c.row_len(1), 0);
        assert_eq!(c.nnz(), 5);
    }

    #[test]
    fn delta_finish_revalidates() {
        let a = sample();
        let mut delta = a.into_delta();
        delta.set_row(0, &[9], &[1.0]);
        let err = delta.finish().unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { col: 9, .. }));
    }
}
