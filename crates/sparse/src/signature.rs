//! Quantized structure-class signatures.
//!
//! The Seer engine's exact caches key on fingerprints, so a *fresh* matrix —
//! even one structurally indistinguishable from a thousand already-served
//! ones — pays the full cold selection path. A [`StructureSignature`]
//! collapses the sparsity pattern onto a handful of coarse buckets over the
//! same quantities the [`MatrixProfile`](crate::MatrixProfile) feeds the cost
//! models (size, row-length skew, ELL padding, bandwidth, gather locality),
//! so structurally-similar matrices — the same generator family at a nearby
//! seed, a tenant's near-duplicate operator — land in the same *class* and
//! can inherit a cached `(kernel, device)` selection instead of re-running
//! the cost-model sweep.
//!
//! Two properties matter:
//!
//! 1. **Cheap.** The probe is one O(rows) walk of the row offsets plus a
//!    strided sample of at most [`StructureSignature::SAMPLE_TARGET`] column
//!    indices — it never triggers (or needs) the full profile pass, so a
//!    class *hit* costs O(rows), not O(nnz).
//! 2. **Canonical.** The same probe computes the signature at class-insert
//!    and class-lookup time, so bucket boundaries are compared
//!    like-for-like; there is no second, "more exact" derivation that could
//!    disagree near an edge.
//!
//! The buckets are deliberately coarse — logarithmic in size, eighths for
//! the ratios — because the kernel-selection surface itself is coarse: the
//! paper's Figure 7 winners flip on order-of-magnitude shape changes, not on
//! percent-level noise. The differential gate in `tests/structure_class.rs`
//! pins the resulting agreement rate (≥95% on the corpus and its perturbed
//! variants).

use crate::CsrMatrix;

/// A quantized, hashable summary of a matrix's sparsity structure.
///
/// Obtained via [`CsrMatrix::structure_signature`] (memoized on the matrix;
/// survives value-only mutation) or directly through
/// [`StructureSignature::probe`]. Matrices with equal signatures form a
/// *structure class*: the engine assumes the same `(kernel, device)`
/// selection serves them equally well and lets class members inherit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureSignature {
    /// `floor(log2(rows + 1))`.
    pub rows_log2: u8,
    /// `floor(log2(cols + 1))`.
    pub cols_log2: u8,
    /// `floor(log2(nnz + 1))`.
    pub nnz_log2: u8,
    /// Row-length coefficient of variation (`stddev / mean`) in steps of
    /// 0.25, saturating at 31 (CV ≥ 7.75 — extreme skew).
    pub cv_bucket: u8,
    /// ELL padding ratio (`1 - nnz / (rows * max_row_len)`) in eighths,
    /// 0..=8.
    pub padding_bucket: u8,
    /// Sampled matrix bandwidth as a fraction of the column count, in
    /// eighths, 0..=8.
    pub bandwidth_bucket: u8,
    /// Sampled gather locality (same estimator as the profile's
    /// `gather_locality`) in eighths, 0..=8.
    pub locality_bucket: u8,
}

impl StructureSignature {
    /// Maximum number of column indices sampled by the probe; matches
    /// `MatrixProfile::LOCALITY_SAMPLES` so the locality estimate agrees
    /// with the profile's on small matrices.
    pub const SAMPLE_TARGET: usize = 4096;

    /// Computes the signature with one walk of the row offsets and a strided
    /// sample of the column indices.
    ///
    /// Deterministic: the stride depends only on `nnz`, so the same matrix
    /// (or any matrix with the same structure) always probes to the same
    /// signature. Prefer [`CsrMatrix::structure_signature`], which memoizes
    /// the result.
    pub fn probe(matrix: &CsrMatrix) -> Self {
        let rows = matrix.rows();
        let cols = matrix.cols();
        let nnz = matrix.nnz();
        let rows_c = rows.max(1);
        let cols_c = cols.max(1);
        let row_offsets = matrix.row_offsets();
        let col_indices = matrix.col_indices();

        let step = if nnz == 0 {
            1
        } else {
            (nnz / Self::SAMPLE_TARGET).max(1)
        };
        let mut next_sample = 0usize;
        let mut sampled = 0usize;
        let mut distance_sum = 0.0f64;
        let mut bandwidth = 0usize;

        let mut max_row_len = 0usize;
        let mut sum_sq = 0.0f64;
        for (row, window) in row_offsets.windows(2).enumerate() {
            let len = window[1] - window[0];
            max_row_len = max_row_len.max(len);
            sum_sq += (len * len) as f64;
            // Strided samples land in ascending order, so consuming every
            // sample below this row's end attributes each to its row without
            // a search — the same scheme as the profile's locality scan.
            while next_sample < window[1] {
                let col = col_indices[next_sample];
                bandwidth = bandwidth.max(row.abs_diff(col));
                let diag = (row as f64 / rows_c as f64) * cols_c as f64;
                distance_sum += (col as f64 - diag).abs() / cols_c as f64;
                sampled += 1;
                next_sample += step;
            }
        }

        let mean = nnz as f64 / rows_c as f64;
        let variance = (sum_sq / rows_c as f64 - mean * mean).max(0.0);
        let cv = if mean > 0.0 {
            variance.sqrt() / mean
        } else {
            0.0
        };

        let padded = rows * max_row_len;
        let padding_ratio = if padded == 0 {
            0.0
        } else {
            1.0 - nnz as f64 / padded as f64
        };

        let locality = if nnz == 0 {
            1.0
        } else {
            let mean_distance = if sampled == 0 {
                0.0
            } else {
                distance_sum / sampled as f64
            };
            (1.0 - 3.0 * mean_distance).clamp(0.0, 1.0)
        };

        Self {
            rows_log2: (rows as u64 + 1).ilog2() as u8,
            cols_log2: (cols as u64 + 1).ilog2() as u8,
            nnz_log2: (nnz as u64 + 1).ilog2() as u8,
            cv_bucket: ((cv / 0.25) as u8).min(31),
            padding_bucket: eighths(padding_ratio),
            bandwidth_bucket: eighths(bandwidth as f64 / cols_c as f64),
            locality_bucket: eighths(locality),
        }
    }
}

/// Quantizes a ratio in `[0, 1]` onto 0..=8 (rounding to the nearest
/// eighth); out-of-range inputs saturate.
fn eighths(ratio: f64) -> u8 {
    ((ratio * 8.0).round().clamp(0.0, 8.0)) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, SplitMix64};

    #[test]
    fn signature_is_deterministic_and_memoized() {
        let mut rng = SplitMix64::new(41);
        let m = generators::banded(800, 5, &mut rng);
        assert_eq!(StructureSignature::probe(&m), StructureSignature::probe(&m));
        assert_eq!(m.structure_signature(), StructureSignature::probe(&m));
    }

    #[test]
    fn same_family_nearby_seeds_share_a_class() {
        let mut a_rng = SplitMix64::new(100);
        let mut b_rng = SplitMix64::new(101);
        let a = generators::uniform_row_length(4000, 9, &mut a_rng);
        let b = generators::uniform_row_length(4000, 9, &mut b_rng);
        assert_eq!(a.structure_signature(), b.structure_signature());
    }

    #[test]
    fn different_shapes_land_in_different_classes() {
        let mut rng = SplitMix64::new(7);
        let banded = generators::banded(4000, 3, &mut rng);
        let random = generators::uniform_random(4000, 4000, 0.002, &mut rng);
        let skewed = generators::skewed_rows(4000, 3, 2000, 0.01, &mut rng);
        assert_ne!(banded.structure_signature(), random.structure_signature());
        assert_ne!(banded.structure_signature(), skewed.structure_signature());
        assert_ne!(random.structure_signature(), skewed.structure_signature());
    }

    #[test]
    fn signature_ignores_values() {
        let mut rng = SplitMix64::new(55);
        let mut m = generators::banded(600, 4, &mut rng);
        let before = m.structure_signature();
        let doubled: Vec<f64> = m.values().iter().map(|v| v * 2.0).collect();
        m.update_values(&doubled).unwrap();
        assert_eq!(m.structure_signature(), before);
    }

    #[test]
    fn degenerate_matrices_probe_cleanly() {
        let zero = CsrMatrix::zeros(0, 0);
        let sig = zero.structure_signature();
        assert_eq!(sig.rows_log2, 0);
        assert_eq!(sig.locality_bucket, 8);

        let empty = CsrMatrix::zeros(64, 64);
        let sig = empty.structure_signature();
        assert_eq!(sig.padding_bucket, 0);
        assert_eq!(sig.cv_bucket, 0);

        let eye = CsrMatrix::identity(1024);
        let sig = eye.structure_signature();
        assert_eq!(sig.bandwidth_bucket, 0);
        assert_eq!(sig.cv_bucket, 0);
        assert_eq!(sig.padding_bucket, 0);
    }

    #[test]
    fn locality_bucket_matches_the_profile_estimate() {
        // On matrices small enough that both estimators sample every nonzero
        // (nnz <= SAMPLE_TARGET), the locality estimate is identical to the
        // profile's, so the bucket is exactly the profile value quantized.
        let mut rng = SplitMix64::new(77);
        let m = generators::banded(500, 3, &mut rng);
        assert!(m.nnz() <= StructureSignature::SAMPLE_TARGET);
        let sig = m.structure_signature();
        assert_eq!(
            sig.locality_bucket,
            super::eighths(m.profile().gather_locality)
        );
        assert_eq!(
            sig.bandwidth_bucket,
            super::eighths(m.profile().bandwidth as f64 / m.cols().max(1) as f64)
        );
    }
}
