//! Per-row shape statistics of sparse matrices.
//!
//! These are exactly the quantities the paper's feature-collection kernels
//! gather at runtime (Section IV-A): maximum, minimum, mean and variance of
//! the *row density* (row length normalised by the number of columns), plus
//! the raw row-length moments that the Kendall-correlation study (Table III)
//! reports against.

use crate::{CsrMatrix, Scalar};

/// Summary statistics of the row-length / row-density distribution of a
/// sparse matrix.
///
/// The density of a row with `len` stored entries in a matrix with `cols`
/// columns is `len / cols`; the paper normalises this way so that the feature
/// is "a metric of both problem size and row-size rather than one or the
/// other" (Section IV-A).
///
/// # Example
///
/// ```
/// use seer_sparse::{CsrMatrix, RowStats};
///
/// # fn main() -> Result<(), seer_sparse::SparseError> {
/// let a = CsrMatrix::try_new(2, 4, vec![0, 1, 4], vec![0, 0, 1, 2], vec![1.0; 4])?;
/// let stats = RowStats::compute(&a);
/// assert_eq!(stats.max_row_len, 3);
/// assert_eq!(stats.min_row_len, 1);
/// assert!((stats.mean_row_len - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RowStats {
    /// Number of rows the statistics were computed over.
    pub rows: usize,
    /// Number of columns of the matrix (the density normaliser).
    pub cols: usize,
    /// Total number of stored entries.
    pub nnz: usize,
    /// Length of the longest row.
    pub max_row_len: usize,
    /// Length of the shortest row (0 for empty rows).
    pub min_row_len: usize,
    /// Mean row length.
    pub mean_row_len: f64,
    /// Population variance of the row length.
    pub var_row_len: f64,
    /// Maximum row density (`max_row_len / cols`).
    pub max_density: f64,
    /// Minimum row density.
    pub min_density: f64,
    /// Mean row density.
    pub mean_density: f64,
    /// Population variance of the row density.
    pub var_density: f64,
    /// Number of rows with no stored entries.
    pub empty_rows: usize,
}

impl RowStats {
    /// Computes row statistics for a CSR matrix in a single O(rows) pass.
    pub fn compute(matrix: &CsrMatrix) -> Self {
        Self::from_row_lengths(matrix.cols(), (0..matrix.rows()).map(|r| matrix.row_len(r)))
    }

    /// Computes the same statistics from an iterator of row lengths.
    ///
    /// Exposed separately so the GPU feature-collection kernels in
    /// `seer-core` can reuse the arithmetic while modelling their own cost.
    pub fn from_row_lengths<I>(cols: usize, row_lengths: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut acc = RowStatsAccumulator::new();
        for len in row_lengths {
            acc.push(len);
        }
        acc.finish(cols)
    }

    /// Coefficient of variation of the row lengths (`stddev / mean`).
    ///
    /// This is a convenient single-number proxy for load imbalance: 0 for
    /// perfectly uniform rows, large for skewed matrices.
    pub fn imbalance(&self) -> f64 {
        if self.mean_row_len == 0.0 {
            0.0
        } else {
            self.var_row_len.sqrt() / self.mean_row_len
        }
    }

    /// Average number of stored entries per row (alias of `mean_row_len`).
    pub fn avg_nnz_per_row(&self) -> f64 {
        self.mean_row_len
    }

    /// Returns the statistics as the gathered-feature vector used by the Seer
    /// models: `[max_density, min_density, mean_density, var_density]`.
    pub fn density_feature_vector(&self) -> [f64; 4] {
        [
            self.max_density,
            self.min_density,
            self.mean_density,
            self.var_density,
        ]
    }
}

/// Streaming accumulator behind [`RowStats::from_row_lengths`].
///
/// Exposed so the fused one-pass matrix profiler
/// ([`crate::MatrixProfile`]) can fold the row statistics into its single
/// traversal while staying bit-identical to a standalone
/// [`RowStats::compute`]: both feed row lengths through this exact
/// accumulation order.
#[derive(Debug, Clone, Copy)]
pub struct RowStatsAccumulator {
    rows: usize,
    nnz: usize,
    max_row_len: usize,
    min_row_len: usize,
    empty_rows: usize,
    sum: f64,
    sum_sq: f64,
}

impl RowStatsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            rows: 0,
            nnz: 0,
            max_row_len: 0,
            min_row_len: usize::MAX,
            empty_rows: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Folds one row's length into the running statistics.
    pub fn push(&mut self, len: usize) {
        self.rows += 1;
        self.nnz += len;
        self.max_row_len = self.max_row_len.max(len);
        self.min_row_len = self.min_row_len.min(len);
        if len == 0 {
            self.empty_rows += 1;
        }
        let lf = len as f64;
        self.sum += lf;
        self.sum_sq += lf * lf;
    }

    /// Finalises the statistics, normalising densities by `cols`.
    pub fn finish(self, cols: usize) -> RowStats {
        if self.rows == 0 {
            return RowStats::default();
        }
        let mean = self.sum / self.rows as f64;
        let var = (self.sum_sq / self.rows as f64 - mean * mean).max(0.0);
        let norm = if cols == 0 { 1.0 } else { cols as f64 };
        RowStats {
            rows: self.rows,
            cols,
            nnz: self.nnz,
            max_row_len: self.max_row_len,
            min_row_len: self.min_row_len,
            mean_row_len: mean,
            var_row_len: var,
            max_density: self.max_row_len as f64 / norm,
            min_density: self.min_row_len as f64 / norm,
            mean_density: mean / norm,
            var_density: var / (norm * norm),
            empty_rows: self.empty_rows,
        }
    }
}

impl Default for RowStatsAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes the fraction of padding slots an ELL conversion of `matrix` would
/// introduce, without materialising the conversion.
///
/// Answered from the matrix's memoized [`crate::MatrixProfile`], so repeated
/// queries (and the ELL kernel's cost model) share one profiling pass instead
/// of recomputing [`RowStats`] from scratch.
pub fn ell_padding_ratio(matrix: &CsrMatrix) -> f64 {
    matrix.profile().ell_padding_ratio
}

/// Histogram of row lengths in power-of-two buckets.
///
/// Used by the Adaptive-CSR kernel's binning preprocessing model and useful
/// for inspecting dataset skew.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowLengthHistogram {
    /// `buckets[i]` counts rows whose length `l` satisfies
    /// `2^(i-1) < l <= 2^i`, with bucket 0 counting empty rows and rows of
    /// length 1 in bucket 1... more precisely rows with `l == 0` land in
    /// bucket 0 and otherwise bucket `ceil(log2(l)) + 1`.
    pub buckets: Vec<usize>,
}

impl RowLengthHistogram {
    /// Builds the histogram for a CSR matrix.
    pub fn compute(matrix: &CsrMatrix) -> Self {
        let mut buckets = Vec::new();
        for row in 0..matrix.rows() {
            let len = matrix.row_len(row);
            let bucket = if len == 0 {
                0
            } else {
                (usize::BITS - (len - 1).leading_zeros()) as usize + 1
            };
            if buckets.len() <= bucket {
                buckets.resize(bucket + 1, 0);
            }
            buckets[bucket] += 1;
        }
        Self { buckets }
    }

    /// Total number of rows accounted for.
    pub fn total_rows(&self) -> usize {
        self.buckets.iter().sum()
    }

    /// Number of distinct non-empty buckets.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.iter().filter(|&&c| c > 0).count()
    }
}

/// Scalar used by [`bandwidth`]; kept here to avoid leaking `Scalar` details.
#[allow(dead_code)]
type Value = Scalar;

/// Computes the matrix bandwidth: the maximum of `|row - col|` over stored
/// entries. Banded/stencil matrices have small bandwidth; random and
/// power-law matrices have bandwidth close to the matrix dimension.
pub fn bandwidth(matrix: &CsrMatrix) -> usize {
    matrix
        .iter()
        .map(|(r, c, _)| r.abs_diff(c))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    fn skewed() -> CsrMatrix {
        // Row lengths: 4, 0, 2
        CsrMatrix::try_new(3, 8, vec![0, 4, 4, 6], vec![0, 1, 2, 3, 6, 7], vec![1.0; 6]).unwrap()
    }

    #[test]
    fn basic_moments() {
        let s = RowStats::compute(&skewed());
        assert_eq!(s.rows, 3);
        assert_eq!(s.nnz, 6);
        assert_eq!(s.max_row_len, 4);
        assert_eq!(s.min_row_len, 0);
        assert_eq!(s.empty_rows, 1);
        assert!((s.mean_row_len - 2.0).abs() < 1e-12);
        // lengths 4,0,2 -> mean 2, var ((4)+(4)+(0))/3 = 8/3
        assert!((s.var_row_len - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn densities_are_normalised_by_cols() {
        let s = RowStats::compute(&skewed());
        assert!((s.max_density - 0.5).abs() < 1e-12);
        assert!((s.mean_density - 0.25).abs() < 1e-12);
        assert!((s.var_density - (8.0 / 3.0) / 64.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_zero_for_uniform_rows() {
        let eye = CsrMatrix::identity(10);
        let s = RowStats::compute(&eye);
        assert_eq!(s.imbalance(), 0.0);
        assert!(RowStats::compute(&skewed()).imbalance() > 0.5);
    }

    #[test]
    fn empty_matrix_defaults() {
        let s = RowStats::compute(&CsrMatrix::zeros(0, 0));
        assert_eq!(s.rows, 0);
        assert_eq!(s.nnz, 0);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn feature_vector_order() {
        let s = RowStats::compute(&skewed());
        let v = s.density_feature_vector();
        assert_eq!(v[0], s.max_density);
        assert_eq!(v[1], s.min_density);
        assert_eq!(v[2], s.mean_density);
        assert_eq!(v[3], s.var_density);
    }

    #[test]
    fn ell_padding_ratio_matches_materialised_conversion() {
        let m = skewed();
        let predicted = ell_padding_ratio(&m);
        let actual = crate::EllMatrix::from_csr(&m).padding_ratio();
        assert!((predicted - actual).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_every_row() {
        let h = RowLengthHistogram::compute(&skewed());
        assert_eq!(h.total_rows(), 3);
        assert!(h.occupied_buckets() >= 2);
        // empty row goes to bucket 0
        assert_eq!(h.buckets[0], 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // lengths 1,2,3,4 -> buckets 1,2,3,3
        let m = CsrMatrix::try_new(
            4,
            8,
            vec![0, 1, 3, 6, 10],
            vec![0, 0, 1, 0, 1, 2, 0, 1, 2, 3],
            vec![1.0; 10],
        )
        .unwrap();
        let h = RowLengthHistogram::compute(&m);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 2);
    }

    #[test]
    fn bandwidth_of_identity_and_full_offdiag() {
        assert_eq!(bandwidth(&CsrMatrix::identity(5)), 0);
        let m = CsrMatrix::try_new(2, 5, vec![0, 1, 1], vec![4], vec![1.0]).unwrap();
        assert_eq!(bandwidth(&m), 4);
    }

    #[test]
    fn from_row_lengths_agrees_with_compute() {
        let m = skewed();
        let a = RowStats::compute(&m);
        let b = RowStats::from_row_lengths(m.cols(), (0..m.rows()).map(|r| m.row_len(r)));
        assert_eq!(a, b);
    }
}
