//! A tiny deterministic pseudo-random number generator.
//!
//! The synthetic dataset generator must be bit-reproducible across runs and
//! machines so that the accuracy and speed-up numbers in EXPERIMENTS.md can be
//! regenerated exactly. Rather than depending on an external RNG crate whose
//! stream may change between versions, we use the well-known SplitMix64
//! generator (Steele, Lea & Flood, OOPSLA 2014): a 64-bit state, a single
//! additive constant, and a finalizer borrowed from MurmurHash3.

/// Deterministic 64-bit pseudo-random number generator (SplitMix64).
///
/// # Example
///
/// ```
/// use seer_sparse::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next raw 64-bit value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed double.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an integer uniformly distributed in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Multiplicative range reduction; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Returns an integer uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }

    /// Returns a float uniformly distributed in `[lo, hi)`.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a sample from the standard normal distribution (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid log(0) by nudging u1 away from zero.
        let u1 = (self.next_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Returns a sample from a (truncated) power-law distribution on
    /// `[1, max]` with exponent `alpha > 1`.
    ///
    /// Used to synthesise scale-free graph degree distributions, which are the
    /// archetypal "irregular" inputs in the paper.
    pub fn next_power_law(&mut self, alpha: f64, max: usize) -> usize {
        debug_assert!(alpha > 1.0);
        let u = self.next_f64();
        let max = max.max(1) as f64;
        // Inverse-CDF sampling of a bounded Pareto with x_min = 1.
        let one_minus = 1.0 - u * (1.0 - max.powf(1.0 - alpha));
        let x = one_minus.powf(1.0 / (1.0 - alpha));
        (x.round() as usize).clamp(1, max as usize)
    }

    /// Shuffles `slice` in place with the Fisher–Yates algorithm.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Splitting keeps unrelated generation steps (e.g. structure versus
    /// values) decoupled so that adding a draw to one does not perturb the
    /// other.
    pub fn split(&mut self, label: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(11);
        for bound in [1usize, 2, 3, 7, 100, 12345] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_range_is_in_range() {
        let mut rng = SplitMix64::new(13);
        for _ in 0..1000 {
            let v = rng.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn gaussian_has_reasonable_moments() {
        let mut rng = SplitMix64::new(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn power_law_bounds() {
        let mut rng = SplitMix64::new(19);
        for _ in 0..5000 {
            let x = rng.next_power_law(2.2, 1000);
            assert!((1..=1000).contains(&x));
        }
    }

    #[test]
    fn power_law_is_skewed() {
        let mut rng = SplitMix64::new(23);
        let n = 20_000;
        let samples: Vec<usize> = (0..n).map(|_| rng.next_power_law(2.0, 10_000)).collect();
        let ones = samples.iter().filter(|&&x| x == 1).count();
        let large = samples.iter().filter(|&&x| x > 100).count();
        // Most mass at small values, but a heavy tail exists.
        assert!(ones > n / 4, "ones = {ones}");
        assert!(large > 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(29);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_independent_of_later_draws() {
        let mut parent_a = SplitMix64::new(31);
        let mut parent_b = SplitMix64::new(31);
        let mut child_a = parent_a.split(1);
        let mut child_b = parent_b.split(1);
        // Drawing extra values from one parent does not change its child's stream.
        parent_a.next_u64();
        assert_eq!(child_a.next_u64(), child_b.next_u64());
    }
}
