//! A deterministic synthetic stand-in for the SuiteSparse Matrix Collection.
//!
//! The paper benchmarks every kernel on the entire SuiteSparse collection
//! (~2,800 matrices spanning circuit simulation, FEM meshes, optimisation,
//! graphs, …). That dataset is several hundred gigabytes and not available
//! offline, so this module generates a structurally diverse collection that
//! plays the same role: it contains enough distinct sparsity *shapes* that no
//! single kernel wins everywhere, which is the property the Seer predictor is
//! trained to exploit.
//!
//! Two entry points:
//!
//! * [`generate`] builds the full training/evaluation collection from a
//!   [`CollectionConfig`],
//! * [`named_standins`] builds scaled-down analogues of the specific matrices
//!   the paper's figures call out (nlpkkt200, matrix-new_3, Ga41As41H72,
//!   CurlCurl_3, G3_circuit, PWTK).

use std::fmt;

use crate::{generators, CsrMatrix, SplitMix64};

/// Structural family a synthetic matrix belongs to.
///
/// Families mirror the SuiteSparse "kind" metadata at a coarse granularity;
/// each family systematically favours a different load-balancing schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Family {
    /// Nearly uniform short rows (banded / circuit-like).
    Banded,
    /// 2-D PDE stencils (5-point Laplacian).
    Stencil2D,
    /// 3-D PDE stencils (7-point Laplacian).
    Stencil3D,
    /// Scale-free graphs with power-law degree distributions.
    PowerLawGraph,
    /// Dense block-diagonal (KKT / multiphysics) systems.
    BlockDiagonal,
    /// Mostly-short rows with a few very long ones.
    SkewedRows,
    /// Exactly uniform row lengths (ELL-friendly).
    UniformRows,
    /// Uniformly random entries at a target density.
    UniformRandom,
    /// Tall-and-skinny rectangular least-squares style.
    TallSkinny,
    /// Mesh with long-range coupling rows (band + power-law overlay).
    HybridMeshGraph,
    /// Diagonal matrices (degenerate but present in SuiteSparse).
    Diagonal,
}

impl Family {
    /// All families, in a fixed order.
    pub const ALL: [Family; 11] = [
        Family::Banded,
        Family::Stencil2D,
        Family::Stencil3D,
        Family::PowerLawGraph,
        Family::BlockDiagonal,
        Family::SkewedRows,
        Family::UniformRows,
        Family::UniformRandom,
        Family::TallSkinny,
        Family::HybridMeshGraph,
        Family::Diagonal,
    ];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Family::Banded => "banded",
            Family::Stencil2D => "stencil2d",
            Family::Stencil3D => "stencil3d",
            Family::PowerLawGraph => "powerlaw",
            Family::BlockDiagonal => "blockdiag",
            Family::SkewedRows => "skewed",
            Family::UniformRows => "uniformrows",
            Family::UniformRandom => "random",
            Family::TallSkinny => "tallskinny",
            Family::HybridMeshGraph => "hybrid",
            Family::Diagonal => "diagonal",
        };
        f.write_str(name)
    }
}

/// One member of the synthetic collection.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetEntry {
    /// Unique identifier (plays the role of the SuiteSparse matrix name).
    pub name: String,
    /// Structural family the matrix was drawn from.
    pub family: Family,
    /// The matrix itself, in CSR form.
    pub matrix: CsrMatrix,
}

/// Overall size scale of the generated collection.
///
/// `Tiny` is meant for unit tests, `Small` for integration tests and CI,
/// `Medium` for the figure-regeneration binaries, and `Large` for longer
/// offline runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizeScale {
    /// Matrices up to a few hundred rows.
    Tiny,
    /// Matrices up to a few thousand rows.
    #[default]
    Small,
    /// Matrices up to tens of thousands of rows.
    Medium,
    /// Matrices up to hundreds of thousands of rows.
    Large,
}

impl SizeScale {
    /// Multiplier applied to the base dimension of every generator.
    fn factor(self) -> usize {
        match self {
            SizeScale::Tiny => 1,
            SizeScale::Small => 4,
            SizeScale::Medium => 16,
            SizeScale::Large => 64,
        }
    }
}

/// Configuration of the synthetic collection generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectionConfig {
    /// Seed of the deterministic RNG; two equal configs generate identical collections.
    pub seed: u64,
    /// Number of matrices generated per family.
    pub matrices_per_family: usize,
    /// Size scale of the generated matrices.
    pub scale: SizeScale,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EE2,
            matrices_per_family: 8,
            scale: SizeScale::Small,
        }
    }
}

impl CollectionConfig {
    /// Configuration suitable for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            seed: 7,
            matrices_per_family: 3,
            scale: SizeScale::Tiny,
        }
    }

    /// Configuration used by the figure-regeneration binaries.
    pub fn evaluation() -> Self {
        Self {
            seed: 2024,
            matrices_per_family: 12,
            scale: SizeScale::Medium,
        }
    }
}

/// Generates the synthetic collection described by `config`.
///
/// The result is deterministic in `config` and sorted by name so downstream
/// train/test splits are reproducible.
pub fn generate(config: &CollectionConfig) -> Vec<DatasetEntry> {
    let mut rng = SplitMix64::new(config.seed);
    let f = config.scale.factor();
    let mut entries = Vec::new();
    for family in Family::ALL {
        let mut family_rng = rng.split(family as u64 + 1);
        for i in 0..config.matrices_per_family {
            let matrix = generate_member(family, i, f, &mut family_rng);
            entries.push(DatasetEntry {
                name: format!("{family}_{i:03}"),
                family,
                matrix,
            });
        }
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    entries
}

/// Generates the `i`-th member of `family` at scale factor `f`.
fn generate_member(family: Family, i: usize, f: usize, rng: &mut SplitMix64) -> CsrMatrix {
    // Sizes within a family span roughly two orders of magnitude (the x-axis
    // spread of Fig. 1): successive members grow geometrically, wrapping every
    // five so large collections revisit each size class with fresh structure.
    let grow = (1usize << (i % 5)) * (1 + i / 5);
    let dim = 300 * f * grow;
    match family {
        Family::Banded => {
            let hb = 1 + rng.next_below(4) + i % 3;
            generators::banded(dim, hb, rng)
        }
        Family::Stencil2D => {
            let grid = ((dim as f64).sqrt() as usize).max(4);
            generators::stencil_2d(grid, rng)
        }
        Family::Stencil3D => {
            let grid = ((dim as f64).cbrt() as usize).max(3);
            generators::stencil_3d(grid, rng)
        }
        Family::PowerLawGraph => {
            let n = dim / 2;
            let alpha = 1.7 + 0.1 * (i % 5) as f64;
            let max_deg = (n / 8).max(4);
            generators::power_law(n, alpha, max_deg, rng)
        }
        Family::BlockDiagonal => {
            let block = 4 + 2 * (i % 6);
            let blocks = (dim / block.max(1)).max(1);
            generators::block_diagonal(blocks, block, rng)
        }
        Family::SkewedRows => {
            // Deliberately matched to the UniformRows family in rows and
            // expected nonzero count: the trivially known features cannot tell
            // the two apart, only the gathered row-density statistics can.
            // This mirrors SuiteSparse, where matrices of identical size can
            // be either regular or heavily skewed.
            let n = dim;
            let base = 3;
            let heavy = (n / 16).max(16);
            let target_extra = (3 * (1 + i % 8)) as f64;
            let fraction = (target_extra / heavy as f64).min(0.5);
            generators::skewed_rows(n, base, heavy, fraction, rng)
        }
        Family::UniformRows => generators::uniform_row_length(dim, 4 + 3 * (i % 8), rng),
        Family::UniformRandom => {
            let n = dim / 2;
            // Density chosen so the expected row length stays moderate no
            // matter how large the matrix grows.
            let avg_row = (6 + 3 * (i % 5)) as f64;
            generators::uniform_random(n, n, avg_row / n as f64, rng)
        }
        Family::TallSkinny => {
            let rows = dim;
            let cols = (rows / 20).max(8);
            generators::tall_skinny(rows, cols, 3 + i % 5, rng)
        }
        Family::HybridMeshGraph => generators::hybrid_mesh_graph(dim / 2, 2 + i % 3, rng),
        Family::Diagonal => generators::diagonal(dim, rng),
    }
}

/// Scaled-down analogues of the matrices highlighted in the paper's figures.
///
/// | Stand-in | SuiteSparse original | Structure reproduced |
/// |---|---|---|
/// | `nlpkkt200`   | optimisation KKT system, huge, block structure | large block-diagonal + band |
/// | `matrix-new_3`| small device-simulation matrix | small skewed rows |
/// | `Ga41As41H72` | quantum chemistry, wide dense-ish rows with skew | hybrid mesh/graph |
/// | `CurlCurl_3`  | 3-D electromagnetics FEM | 3-D stencil |
/// | `G3_circuit`  | circuit simulation, very uniform short rows | 2-D stencil |
/// | `PWTK`        | pressurised wind tunnel stiffness, banded blocks | banded with wide band |
pub fn named_standins(scale: SizeScale) -> Vec<DatasetEntry> {
    // The stand-ins are already hundreds of thousands of rows at `Medium`;
    // cap the growth so `Large` stays tractable on a laptop.
    let f = scale.factor().min(24);
    let mut rng = SplitMix64::new(0xFEED_FACE);
    let make = |name: &str, family: Family, matrix: CsrMatrix| DatasetEntry {
        name: name.to_string(),
        family,
        matrix,
    };
    vec![
        make("nlpkkt200", Family::BlockDiagonal, {
            let block = 8;
            let blocks = (2_000 * f / block).max(4);
            generators::block_diagonal(blocks, block, &mut rng)
        }),
        make(
            "matrix-new_3",
            Family::SkewedRows,
            generators::skewed_rows(8_000 * f, 5, (1_000 * f).max(16), 0.002, &mut rng),
        ),
        make(
            "Ga41As41H72",
            Family::HybridMeshGraph,
            generators::hybrid_mesh_graph(6_000 * f, 3, &mut rng),
        ),
        make(
            "CurlCurl_3",
            Family::Stencil3D,
            generators::stencil_3d(14 + 3 * f, &mut rng),
        ),
        make(
            "G3_circuit",
            Family::Stencil2D,
            generators::stencil_2d(40 * f, &mut rng),
        ),
        make(
            "PWTK",
            Family::Banded,
            generators::banded(10_000 * f, 10, &mut rng),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowStats;

    #[test]
    fn generation_is_deterministic() {
        let config = CollectionConfig::tiny();
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_collections() {
        let a = generate(&CollectionConfig {
            seed: 1,
            ..CollectionConfig::tiny()
        });
        let b = generate(&CollectionConfig {
            seed: 2,
            ..CollectionConfig::tiny()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn expected_number_of_entries() {
        let config = CollectionConfig {
            matrices_per_family: 2,
            ..CollectionConfig::tiny()
        };
        let entries = generate(&config);
        assert_eq!(entries.len(), 2 * Family::ALL.len());
    }

    #[test]
    fn names_are_unique() {
        let entries = generate(&CollectionConfig::tiny());
        let mut names: Vec<_> = entries.iter().map(|e| e.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), entries.len());
    }

    #[test]
    fn every_family_is_represented() {
        let entries = generate(&CollectionConfig::tiny());
        for family in Family::ALL {
            assert!(
                entries.iter().any(|e| e.family == family),
                "missing {family}"
            );
        }
    }

    #[test]
    fn collection_spans_diverse_imbalance() {
        let entries = generate(&CollectionConfig::tiny());
        let imbalances: Vec<f64> = entries
            .iter()
            .map(|e| RowStats::compute(&e.matrix).imbalance())
            .collect();
        let min = imbalances.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = imbalances.iter().cloned().fold(0.0, f64::max);
        assert!(
            min < 0.05,
            "expected some regular matrices, min imbalance {min}"
        );
        assert!(
            max > 0.8,
            "expected some irregular matrices, max imbalance {max}"
        );
    }

    #[test]
    fn matrices_are_nonempty_and_valid() {
        for entry in generate(&CollectionConfig::tiny()) {
            assert!(entry.matrix.rows() > 0, "{}", entry.name);
            assert!(entry.matrix.nnz() > 0, "{}", entry.name);
        }
    }

    #[test]
    fn named_standins_cover_paper_matrices() {
        let standins = named_standins(SizeScale::Tiny);
        let names: Vec<&str> = standins.iter().map(|e| e.name.as_str()).collect();
        for expected in [
            "nlpkkt200",
            "matrix-new_3",
            "Ga41As41H72",
            "CurlCurl_3",
            "G3_circuit",
            "PWTK",
        ] {
            assert!(names.contains(&expected), "missing stand-in {expected}");
        }
    }

    #[test]
    fn standin_structures_match_descriptions() {
        let standins = named_standins(SizeScale::Tiny);
        let by_name = |n: &str| standins.iter().find(|e| e.name == n).unwrap();
        // G3_circuit stand-in should be very regular; matrix-new_3 should be skewed.
        let g3 = RowStats::compute(&by_name("G3_circuit").matrix);
        let mn3 = RowStats::compute(&by_name("matrix-new_3").matrix);
        assert!(g3.imbalance() < mn3.imbalance());
        // nlpkkt200 stand-in should be the perfectly balanced block matrix.
        let kkt = RowStats::compute(&by_name("nlpkkt200").matrix);
        assert_eq!(kkt.imbalance(), 0.0);
    }

    #[test]
    fn scale_grows_matrix_sizes() {
        let tiny = named_standins(SizeScale::Tiny);
        let small = named_standins(SizeScale::Small);
        let tiny_nnz: usize = tiny.iter().map(|e| e.matrix.nnz()).sum();
        let small_nnz: usize = small.iter().map(|e| e.matrix.nnz()).sum();
        assert!(small_nnz > 2 * tiny_nnz);
    }
}
