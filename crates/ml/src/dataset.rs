//! Labelled feature matrices and train/test splitting.

use crate::MlError;

/// A labelled classification dataset: one feature vector and one integer
/// class label per sample.
///
/// Samples correspond to matrices of the representative dataset, features to
/// the known or gathered statistics, and labels to the index of the fastest
/// kernel (see `seer-core` for how the tables are assembled).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    feature_names: Vec<String>,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset after validating shapes.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] when there are no samples and
    /// [`MlError::ShapeMismatch`] when rows have inconsistent lengths or the
    /// label count differs from the sample count.
    pub fn new(
        feature_names: Vec<String>,
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Self, MlError> {
        if features.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if features.len() != labels.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "{} feature rows but {} labels",
                    features.len(),
                    labels.len()
                ),
            });
        }
        let width = feature_names.len();
        for (i, row) in features.iter().enumerate() {
            if row.len() != width {
                return Err(MlError::ShapeMismatch {
                    reason: format!(
                        "row {i} has {} features but {width} names were given",
                        row.len()
                    ),
                });
            }
        }
        let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(Self {
            feature_names,
            features,
            labels,
            num_classes,
        })
    }

    /// Builds a dataset declaring `num_classes` explicitly (useful when some
    /// classes are absent from the sample).
    ///
    /// # Errors
    ///
    /// As for [`Dataset::new`], plus a [`MlError::ShapeMismatch`] if a label
    /// is `>= num_classes`.
    pub fn with_classes(
        feature_names: Vec<String>,
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, MlError> {
        let mut dataset = Self::new(feature_names, features, labels)?;
        if dataset.num_classes > num_classes {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "labels reference class {} but only {num_classes} classes were declared",
                    dataset.num_classes - 1
                ),
            });
        }
        dataset.num_classes = num_classes;
        Ok(dataset)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no samples (never true for a constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes (max label + 1, or the declared count).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature matrix, one row per sample.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns `(features, label)` of sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn sample(&self, index: usize) -> (&[f64], usize) {
        (&self.features[index], self.labels[index])
    }

    /// Builds a new dataset from a subset of sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits the dataset into train and test partitions.
    ///
    /// `train_fraction` is clamped to `[0, 1]`; the paper uses 0.8. The split
    /// is a deterministic pseudo-random permutation derived from `seed`, so
    /// the same seed always yields the same partition.
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> TrainTestSplit {
        let n = self.len();
        let mut indices: Vec<usize> = (0..n).collect();
        // Fisher–Yates with an inline SplitMix64 so this crate stays dependency-free.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            indices.swap(i, j);
        }
        let train_len = ((n as f64) * train_fraction.clamp(0.0, 1.0))
            .round()
            .min(n as f64) as usize;
        let (train_idx, test_idx) = indices.split_at(train_len);
        TrainTestSplit {
            train: self.subset(train_idx),
            test: self.subset(test_idx),
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &label in &self.labels {
            counts[label] += 1;
        }
        counts
    }
}

/// The result of [`Dataset::train_test_split`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainTestSplit {
    /// The training partition.
    pub train: Dataset,
    /// The held-out test partition.
    pub test: Dataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let features: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(vec!["a".into(), "b".into()], features, labels).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy(12);
        assert_eq!(d.len(), 12);
        assert!(!d.is_empty());
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.sample(3), (&[3.0, 9.0][..], 0));
        assert_eq!(d.class_counts(), vec![4, 4, 4]);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert_eq!(
            Dataset::new(vec!["a".into()], vec![], vec![]).unwrap_err(),
            MlError::EmptyDataset
        );
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![0, 1]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0]).is_err());
    }

    #[test]
    fn with_classes_validates_labels() {
        let features = vec![vec![1.0], vec![2.0]];
        assert!(Dataset::with_classes(vec!["a".into()], features.clone(), vec![0, 5], 3).is_err());
        let d = Dataset::with_classes(vec!["a".into()], features, vec![0, 1], 8).unwrap();
        assert_eq!(d.num_classes(), 8);
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let d = toy(100);
        let a = d.train_test_split(0.8, 42);
        let b = d.train_test_split(0.8, 42);
        assert_eq!(a, b);
        assert_eq!(a.train.len(), 80);
        assert_eq!(a.test.len(), 20);
        let c = d.train_test_split(0.8, 43);
        assert_ne!(a.train, c.train);
    }

    #[test]
    fn split_preserves_total_samples() {
        let d = toy(37);
        let split = d.train_test_split(0.8, 7);
        assert_eq!(split.train.len() + split.test.len(), 37);
    }

    #[test]
    fn subset_selects_requested_rows() {
        let d = toy(10);
        let s = d.subset(&[1, 4, 7]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sample(1).0, &[4.0, 16.0]);
        assert_eq!(s.num_classes(), 3);
    }

    #[test]
    fn extreme_split_fractions() {
        let d = toy(10);
        let all_train = d.train_test_split(1.0, 1);
        assert_eq!(all_train.train.len(), 10);
        assert_eq!(all_train.test.len(), 0);
        let all_test = d.train_test_split(0.0, 1);
        assert_eq!(all_test.train.len(), 0);
        assert_eq!(all_test.test.len(), 10);
    }
}
