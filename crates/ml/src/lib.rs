//! Machine-learning components of the Seer reproduction.
//!
//! The paper trains its kernel-selection predictors with scikit-learn's CART
//! decision tree (Gini impurity, capped depth, no hyperparameter tuning on
//! the test set) and exports them as C++ headers. This crate reimplements
//! that stack from scratch:
//!
//! * [`Dataset`] — a labelled feature matrix with deterministic train/test
//!   splitting (the paper uses an 80/20 split),
//! * [`DecisionTree`] — CART with Gini impurity and a maximum-depth cap,
//! * [`LinearRegression`] and [`GradientBoosting`] — the quantitative
//!   (runtime-predicting) baselines the paper reports rejecting in its design
//!   discussion,
//! * [`metrics`] — accuracy, confusion matrices, geometric means and the
//!   Kendall rank correlation used in Table III,
//! * [`export`] — C++-header and Rust-source code generation for trained
//!   trees, matching the Seer API's deliverable.
//!
//! # Example
//!
//! ```
//! use seer_ml::{Dataset, DecisionTree, DecisionTreeParams};
//!
//! # fn main() -> Result<(), seer_ml::MlError> {
//! // Tiny toy problem: class = whether the first feature exceeds 0.5.
//! let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0, 1.0]).collect();
//! let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
//! let dataset = Dataset::new(vec!["x".into(), "bias".into()], features, labels)?;
//! let tree = DecisionTree::fit(&dataset, &DecisionTreeParams::default())?;
//! assert_eq!(tree.predict(&[0.9, 1.0]), 1);
//! assert_eq!(tree.predict(&[0.1, 1.0]), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod decision_tree;
mod error;
mod gradient_boosting;
mod linear_regression;

pub mod export;
pub mod metrics;

pub use dataset::{Dataset, TrainTestSplit};
pub use decision_tree::{DecisionTree, DecisionTreeParams, TreeNode};
pub use error::MlError;
pub use gradient_boosting::{GradientBoosting, GradientBoostingParams};
pub use linear_regression::LinearRegression;
