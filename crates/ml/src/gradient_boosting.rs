//! Gradient-boosted regression stumps, the second rejected baseline.
//!
//! The paper mentions evaluating "gradient boosting based methods" that
//! predict runtimes quantitatively before settling on a classifier. This is a
//! compact reimplementation: least-squares gradient boosting over depth-1
//! regression trees (stumps), one model per output, used to predict each
//! kernel's runtime and pick the argmin.

use crate::MlError;

/// Hyperparameters for [`GradientBoosting`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientBoostingParams {
    /// Number of boosting rounds (stumps) per output.
    pub rounds: usize,
    /// Shrinkage applied to each stump's contribution.
    pub learning_rate: f64,
}

impl Default for GradientBoostingParams {
    fn default() -> Self {
        Self {
            rounds: 100,
            learning_rate: 0.1,
        }
    }
}

/// A single regression stump: one split, two constant predictions.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    left_value: f64,
    right_value: f64,
}

impl Stump {
    fn predict(&self, features: &[f64]) -> f64 {
        if features[self.feature] < self.threshold {
            self.left_value
        } else {
            self.right_value
        }
    }
}

/// One boosted-ensemble regressor per output dimension.
///
/// The fitted stumps of every output live in one contiguous `Vec<Stump>`
/// (output `k` owns `stumps[offsets[k]..offsets[k + 1]]`) rather than a
/// vector-of-vectors, so a prediction streams a single flat allocation —
/// the same cache-friendly array-of-nodes discipline as the flattened
/// [`crate::DecisionTree`] inference.
#[derive(Debug, Clone, PartialEq)]
pub struct GradientBoosting {
    base: Vec<f64>,
    /// All stumps, grouped by output, concatenated.
    stumps: Vec<Stump>,
    /// `num_outputs + 1` offsets into `stumps`.
    offsets: Vec<usize>,
    learning_rate: f64,
    num_features: usize,
}

impl GradientBoosting {
    /// Fits boosted stumps to multi-output regression targets.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] with no samples and
    /// [`MlError::ShapeMismatch`] on inconsistent rows.
    pub fn fit(
        features: &[Vec<f64>],
        targets: &[Vec<f64>],
        params: &GradientBoostingParams,
    ) -> Result<Self, MlError> {
        if features.is_empty() || targets.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if features.len() != targets.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "{} feature rows but {} target rows",
                    features.len(),
                    targets.len()
                ),
            });
        }
        let num_features = features[0].len();
        let num_outputs = targets[0].len();
        if features.iter().any(|r| r.len() != num_features) {
            return Err(MlError::ShapeMismatch {
                reason: "feature rows have inconsistent lengths".to_string(),
            });
        }
        if targets.iter().any(|r| r.len() != num_outputs) {
            return Err(MlError::ShapeMismatch {
                reason: "target rows have inconsistent lengths".to_string(),
            });
        }

        let n = features.len() as f64;
        let mut base = vec![0.0; num_outputs];
        for target in targets {
            for (k, &t) in target.iter().enumerate() {
                base[k] += t / n;
            }
        }

        let mut stumps = Vec::new();
        let mut offsets = Vec::with_capacity(num_outputs + 1);
        offsets.push(0);
        for output in 0..num_outputs {
            let mut predictions: Vec<f64> = vec![base[output]; features.len()];
            for _ in 0..params.rounds {
                let residuals: Vec<f64> = targets
                    .iter()
                    .zip(&predictions)
                    .map(|(t, p)| t[output] - p)
                    .collect();
                let Some(stump) = fit_stump(features, &residuals) else {
                    break;
                };
                for (pred, row) in predictions.iter_mut().zip(features) {
                    *pred += params.learning_rate * stump.predict(row);
                }
                stumps.push(Stump {
                    left_value: stump.left_value * params.learning_rate,
                    right_value: stump.right_value * params.learning_rate,
                    ..stump
                });
            }
            offsets.push(stumps.len());
        }
        Ok(Self {
            base,
            stumps,
            offsets,
            learning_rate: params.learning_rate,
            num_features,
        })
    }

    /// The stumps fitted for one output: a contiguous slice of the flat
    /// ensemble array.
    fn ensemble(&self, output: usize) -> &[Stump] {
        &self.stumps[self.offsets[output]..self.offsets[output + 1]]
    }

    /// Predicts the target vector for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureLengthMismatch`] on a wrong-length input.
    pub fn predict(&self, features: &[f64]) -> Result<Vec<f64>, MlError> {
        if features.len() != self.num_features {
            return Err(MlError::FeatureLengthMismatch {
                expected: self.num_features,
                found: features.len(),
            });
        }
        Ok(self
            .base
            .iter()
            .enumerate()
            .map(|(output, &b)| {
                b + self
                    .ensemble(output)
                    .iter()
                    .map(|s| s.predict(features))
                    .sum::<f64>()
            })
            .collect())
    }

    /// Predicts the index of the smallest output.
    ///
    /// # Errors
    ///
    /// See [`GradientBoosting::predict`].
    pub fn predict_argmin(&self, features: &[f64]) -> Result<usize, MlError> {
        let outputs = self.predict(features)?;
        Ok(outputs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Number of boosting rounds actually fitted for the first output.
    pub fn rounds(&self) -> usize {
        if self.offsets.len() < 2 {
            0
        } else {
            self.offsets[1] - self.offsets[0]
        }
    }

    /// The shrinkage factor the ensemble was trained with.
    pub fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

/// Fits the least-squares-optimal stump to the residuals, or `None` if no
/// split reduces the error (e.g. constant features).
fn fit_stump(features: &[Vec<f64>], residuals: &[f64]) -> Option<Stump> {
    let num_features = features[0].len();
    let mut best: Option<(f64, Stump)> = None;
    for feature in 0..num_features {
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.sort_by(|&a, &b| {
            features[a][feature]
                .partial_cmp(&features[b][feature])
                .expect("finite features")
        });
        let total_sum: f64 = residuals.iter().sum();
        let total_count = residuals.len() as f64;
        let mut left_sum = 0.0;
        let mut left_count = 0.0;
        for split_at in 1..order.len() {
            let moved = order[split_at - 1];
            left_sum += residuals[moved];
            left_count += 1.0;
            let prev = features[order[split_at - 1]][feature];
            let this = features[order[split_at]][feature];
            if prev == this {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_count = total_count - left_count;
            let left_mean = left_sum / left_count;
            let right_mean = right_sum / right_count;
            // Maximising the variance reduction is equivalent to maximising
            // left_sum^2/left_count + right_sum^2/right_count.
            let score = left_sum * left_mean + right_sum * right_mean;
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((
                    score,
                    Stump {
                        feature,
                        threshold: (prev + this) / 2.0,
                        left_value: left_mean,
                        right_value: right_mean,
                    },
                ));
            }
        }
    }
    best.map(|(_, stump)| stump)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![if i < 60 { 1.0 } else { 5.0 }])
            .collect();
        let model =
            GradientBoosting::fit(&features, &targets, &GradientBoostingParams::default()).unwrap();
        assert!((model.predict(&[10.0]).unwrap()[0] - 1.0).abs() < 0.2);
        assert!((model.predict(&[90.0]).unwrap()[0] - 5.0).abs() < 0.2);
    }

    #[test]
    fn approximates_smooth_function_better_with_more_rounds() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let targets: Vec<Vec<f64>> = features.iter().map(|f| vec![(f[0] * 6.0).sin()]).collect();
        let weak = GradientBoosting::fit(
            &features,
            &targets,
            &GradientBoostingParams {
                rounds: 5,
                learning_rate: 0.3,
            },
        )
        .unwrap();
        let strong = GradientBoosting::fit(
            &features,
            &targets,
            &GradientBoostingParams {
                rounds: 200,
                learning_rate: 0.3,
            },
        )
        .unwrap();
        let mse = |model: &GradientBoosting| -> f64 {
            features
                .iter()
                .zip(&targets)
                .map(|(f, t)| (model.predict(f).unwrap()[0] - t[0]).powi(2))
                .sum::<f64>()
                / features.len() as f64
        };
        assert!(mse(&strong) < mse(&weak));
    }

    #[test]
    fn argmin_picks_fastest_output() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = features
            .iter()
            .map(|f| vec![f[0] + 10.0, 100.0 - f[0]])
            .collect();
        let model =
            GradientBoosting::fit(&features, &targets, &GradientBoostingParams::default()).unwrap();
        assert_eq!(model.predict_argmin(&[5.0]).unwrap(), 0);
        assert_eq!(model.predict_argmin(&[95.0]).unwrap(), 1);
    }

    #[test]
    fn constant_features_produce_constant_model() {
        let features = vec![vec![1.0]; 10];
        let targets: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let model =
            GradientBoosting::fit(&features, &targets, &GradientBoostingParams::default()).unwrap();
        assert_eq!(model.rounds(), 0);
        assert!((model.predict(&[1.0]).unwrap()[0] - 4.5).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(GradientBoosting::fit(&[], &[], &GradientBoostingParams::default()).is_err());
        assert!(GradientBoosting::fit(
            &[vec![1.0]],
            &[vec![1.0], vec![2.0]],
            &GradientBoostingParams::default()
        )
        .is_err());
    }

    #[test]
    fn flat_ensemble_slices_partition_the_stumps() {
        // Two outputs with different fitted round counts: the offsets must
        // partition the flat array, and each output's prediction must only
        // see its own slice.
        let features: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = features
            .iter()
            .map(|f| vec![if f[0] < 30.0 { 0.0 } else { 1.0 }, 7.0])
            .collect();
        let model = GradientBoosting::fit(
            &features,
            &targets,
            &GradientBoostingParams {
                rounds: 20,
                learning_rate: 0.5,
            },
        )
        .unwrap();
        assert_eq!(model.offsets.len(), 3);
        assert_eq!(*model.offsets.last().unwrap(), model.stumps.len());
        assert_eq!(
            model.ensemble(0).len() + model.ensemble(1).len(),
            model.stumps.len()
        );
        // Output 1 is constant: its stumps contribute nothing, so the flat
        // slices must not leak output 0's corrections into it.
        assert!((model.predict(&[45.0]).unwrap()[1] - 7.0).abs() < 1e-9);
        assert!(model.predict(&[45.0]).unwrap()[0] > 0.5);
    }

    #[test]
    fn predict_validates_feature_length() {
        let model = GradientBoosting::fit(
            &[vec![1.0], vec![2.0]],
            &[vec![1.0], vec![2.0]],
            &GradientBoostingParams::default(),
        )
        .unwrap();
        assert!(model.predict(&[1.0, 2.0]).is_err());
    }
}
