//! CART decision-tree classifier with Gini impurity.

use crate::{Dataset, MlError};

/// Hyperparameters of the decision-tree classifier.
///
/// Mirrors the regularisation policy described in the paper: an explicit
/// maximum depth to stop branches from splitting to zero impurity, and no
/// hyperparameter tuning against the test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a node must hold to be considered for splitting.
    pub min_samples_split: usize,
    /// Minimum number of samples each child of a split must receive.
    pub min_samples_leaf: usize,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_split: 2,
            min_samples_leaf: 1,
        }
    }
}

/// A node of the trained tree.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeNode {
    /// Internal node: samples with `feature < threshold` go left, others right.
    Split {
        /// Index of the feature tested.
        feature: usize,
        /// Threshold compared against.
        threshold: f64,
        /// Subtree for `feature < threshold`.
        left: Box<TreeNode>,
        /// Subtree for `feature >= threshold`.
        right: Box<TreeNode>,
    },
    /// Leaf node: predicts `class`.
    Leaf {
        /// Predicted class index.
        class: usize,
        /// Number of training samples of each class that reached this leaf.
        class_counts: Vec<usize>,
    },
}

/// One node of the flattened inference layout: either a split or a leaf,
/// packed into a contiguous array so a prediction walks indices instead of
/// chasing `Box` pointers.
///
/// The flattening is preorder with the left child adjacent (`left == index +
/// 1` for every split), so a typical walk stays within one or two cache
/// lines; `feature == FlatNode::LEAF` marks a leaf whose predicted class is
/// stored in `left`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    /// Feature index tested, or [`FlatNode::LEAF`].
    feature: u32,
    /// Threshold compared against (unused on leaves).
    threshold: f64,
    /// Index of the `< threshold` child, or the predicted class on a leaf.
    left: u32,
    /// Index of the `>= threshold` child (unused on leaves).
    right: u32,
}

impl FlatNode {
    /// Sentinel `feature` value marking a leaf node.
    const LEAF: u32 = u32::MAX;
}

/// Appends `node` (and its subtrees, preorder) to `nodes`, returning its
/// index.
fn flatten_into(node: &TreeNode, nodes: &mut Vec<FlatNode>) -> u32 {
    let index = u32::try_from(nodes.len()).expect("tree has fewer than 2^32 nodes");
    match node {
        TreeNode::Leaf { class, .. } => {
            nodes.push(FlatNode {
                feature: FlatNode::LEAF,
                threshold: 0.0,
                left: u32::try_from(*class).expect("class index fits u32"),
                right: 0,
            });
        }
        TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            nodes.push(FlatNode {
                feature: u32::try_from(*feature).expect("feature index fits u32"),
                threshold: *threshold,
                left: 0,
                right: 0,
            });
            let left_index = flatten_into(left, nodes);
            let right_index = flatten_into(right, nodes);
            nodes[index as usize].left = left_index;
            nodes[index as usize].right = right_index;
        }
    }
    index
}

/// A CART decision-tree classifier trained with Gini impurity.
///
/// The inference path is a chain of `if feature < threshold` comparisons —
/// "effectively a number of nested if-else statements", as the paper puts it —
/// so prediction cost is negligible next to any GPU kernel, and the trained
/// weights can be dumped as a C++ header (see [`crate::export`]).
///
/// Internally the trained tree is kept twice: the pointer-based [`TreeNode`]
/// structure (the explainability/export surface, and the reference walk) and
/// a flattened array-of-nodes derived from it at fit time, which is what
/// [`DecisionTree::predict`] traverses — an index-chasing loop over one
/// contiguous allocation instead of a `Box` pointer chase per level.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: TreeNode,
    flat: Vec<FlatNode>,
    num_features: usize,
    num_classes: usize,
    feature_names: Vec<String>,
    params: DecisionTreeParams,
}

impl DecisionTree {
    /// Trains a tree on `dataset` with the given hyperparameters.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] if the dataset has no samples.
    pub fn fit(dataset: &Dataset, params: &DecisionTreeParams) -> Result<Self, MlError> {
        if dataset.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let root = build_node(dataset, &indices, params, 0);
        let mut flat = Vec::new();
        flatten_into(&root, &mut flat);
        Ok(Self {
            root,
            flat,
            num_features: dataset.num_features(),
            num_classes: dataset.num_classes(),
            feature_names: dataset.feature_names().to_vec(),
            params: *params,
        })
    }

    /// Predicts the class of a feature vector via the flattened,
    /// cache-friendly node array.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(
            features.len(),
            self.num_features,
            "feature vector length must match training data"
        );
        let mut index = 0usize;
        loop {
            let node = &self.flat[index];
            if node.feature == FlatNode::LEAF {
                return node.left as usize;
            }
            index = if features[node.feature as usize] < node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }

    /// Reference prediction by walking the pointer-based [`TreeNode`]
    /// structure. Same decisions as [`DecisionTree::predict`] — the
    /// flattened layout is an exact transliteration — kept as the oracle the
    /// equivalence tests compare against.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict_via_root(&self, features: &[f64]) -> usize {
        assert_eq!(
            features.len(),
            self.num_features,
            "feature vector length must match training data"
        );
        let mut node = &self.root;
        loop {
            match node {
                TreeNode::Leaf { class, .. } => return *class,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] < *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Checked variant of [`DecisionTree::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureLengthMismatch`] on a wrong-length input.
    pub fn try_predict(&self, features: &[f64]) -> Result<usize, MlError> {
        if features.len() != self.num_features {
            return Err(MlError::FeatureLengthMismatch {
                expected: self.num_features,
                found: features.len(),
            });
        }
        Ok(self.predict(features))
    }

    /// Predicts classes for a batch of feature vectors.
    pub fn predict_batch(&self, features: &[Vec<f64>]) -> Vec<usize> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// Fraction of `dataset` classified correctly.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .features()
            .iter()
            .zip(dataset.labels())
            .filter(|(f, &label)| self.predict(f) == label)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// The root node of the trained tree.
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes the tree can predict.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature names recorded at training time.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Hyperparameters used for training.
    pub fn params(&self) -> &DecisionTreeParams {
        &self.params
    }

    /// Depth of the trained tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 0,
                TreeNode::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }

    /// Total number of nodes (splits plus leaves).
    pub fn node_count(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// How often each feature is used in a split; a crude importance measure
    /// that supports the explainability discussion in the paper.
    pub fn feature_split_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_features];
        fn walk(node: &TreeNode, counts: &mut [usize]) {
            if let TreeNode::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                counts[*feature] += 1;
                walk(left, counts);
                walk(right, counts);
            }
        }
        walk(&self.root, &mut counts);
        counts
    }

    /// Number of comparisons performed to classify `features`: the cost of an
    /// inference, measured in if-else evaluations. Walks the same flattened
    /// node array as [`DecisionTree::predict`].
    pub fn decision_path_length(&self, features: &[f64]) -> usize {
        let mut index = 0usize;
        let mut steps = 0;
        loop {
            let node = &self.flat[index];
            if node.feature == FlatNode::LEAF {
                return steps;
            }
            steps += 1;
            index = if features[node.feature as usize] < node.threshold {
                node.left as usize
            } else {
                node.right as usize
            };
        }
    }
}

/// Gini impurity of a class-count histogram.
fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| (c as f64 / total).powi(2))
        .sum::<f64>()
}

fn class_counts(dataset: &Dataset, indices: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; dataset.num_classes()];
    for &i in indices {
        counts[dataset.labels()[i]] += 1;
    }
    counts
}

fn majority_class(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, &c)| c)
        .map(|(class, _)| class)
        .unwrap_or(0)
}

fn build_node(
    dataset: &Dataset,
    indices: &[usize],
    params: &DecisionTreeParams,
    depth: usize,
) -> TreeNode {
    let counts = class_counts(dataset, indices);
    let node_impurity = gini(&counts, indices.len());
    let leaf = TreeNode::Leaf {
        class: majority_class(&counts),
        class_counts: counts.clone(),
    };

    if depth >= params.max_depth || indices.len() < params.min_samples_split || node_impurity == 0.0
    {
        return leaf;
    }

    let Some((feature, threshold)) = best_split(dataset, indices, params) else {
        return leaf;
    };

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| dataset.features()[i][feature] < threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return leaf;
    }
    TreeNode::Split {
        feature,
        threshold,
        left: Box::new(build_node(dataset, &left_idx, params, depth + 1)),
        right: Box::new(build_node(dataset, &right_idx, params, depth + 1)),
    }
}

/// Finds the `(feature, threshold)` pair minimising the weighted Gini impurity
/// of the two children, or `None` if no split improves on the parent.
fn best_split(
    dataset: &Dataset,
    indices: &[usize],
    params: &DecisionTreeParams,
) -> Option<(usize, f64)> {
    let parent_counts = class_counts(dataset, indices);
    let parent_gini = gini(&parent_counts, indices.len());
    let n = indices.len() as f64;
    let num_classes = dataset.num_classes();

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
    for feature in 0..dataset.num_features() {
        // Sort samples by this feature and sweep candidate thresholds.
        let mut order: Vec<usize> = indices.to_vec();
        order.sort_by(|&a, &b| {
            dataset.features()[a][feature]
                .partial_cmp(&dataset.features()[b][feature])
                .expect("features are finite")
        });
        let mut left_counts = vec![0usize; num_classes];
        let mut right_counts = parent_counts.clone();
        for split_at in 1..order.len() {
            let moved = order[split_at - 1];
            left_counts[dataset.labels()[moved]] += 1;
            right_counts[dataset.labels()[moved]] -= 1;
            let prev_value = dataset.features()[order[split_at - 1]][feature];
            let this_value = dataset.features()[order[split_at]][feature];
            if prev_value == this_value {
                continue;
            }
            if split_at < params.min_samples_leaf
                || order.len() - split_at < params.min_samples_leaf
            {
                continue;
            }
            let threshold = (prev_value + this_value) / 2.0;
            let left_gini = gini(&left_counts, split_at);
            let right_gini = gini(&right_counts, order.len() - split_at);
            let weighted = (split_at as f64 / n) * left_gini
                + ((order.len() - split_at) as f64 / n) * right_gini;
            if weighted + 1e-12 < best.map_or(parent_gini, |(_, _, b)| b) {
                best = Some((feature, threshold, weighted));
            }
        }
    }
    best.map(|(feature, threshold, _)| (feature, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Dataset {
        let names = (0..features[0].len()).map(|i| format!("f{i}")).collect();
        Dataset::new(names, features, labels).unwrap()
    }

    #[test]
    fn gini_impurity_values() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1], 4) - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }

    #[test]
    fn learns_axis_aligned_boundary() {
        let features: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let labels: Vec<usize> = (0..200).map(|i| usize::from(i >= 120)).collect();
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        assert_eq!(tree.predict(&[0.1]), 0);
        assert_eq!(tree.predict(&[0.9]), 1);
        assert!((tree.accuracy(&d) - 1.0).abs() < 1e-12);
        assert_eq!(tree.depth(), 1);
    }

    #[test]
    fn learns_xor_with_enough_depth() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f64 / 20.0;
                let y = j as f64 / 20.0;
                features.push(vec![x, y]);
                labels.push(usize::from((x > 0.5) ^ (y > 0.5)));
            }
        }
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        assert!(tree.accuracy(&d) > 0.98);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_caps_the_tree() {
        let features: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..256).map(|i| (i / 16) % 2).collect();
        let d = dataset_from(features, labels);
        let shallow = DecisionTree::fit(
            &d,
            &DecisionTreeParams {
                max_depth: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let deep = DecisionTree::fit(
            &d,
            &DecisionTreeParams {
                max_depth: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(shallow.depth() <= 2);
        assert!(deep.accuracy(&d) > shallow.accuracy(&d));
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let d = dataset_from(vec![vec![1.0], vec![2.0], vec![3.0]], vec![1, 1, 1]);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let features: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 0, 1];
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(
            &d,
            &DecisionTreeParams {
                min_samples_leaf: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // No leaf may end up with fewer than three training samples.
        fn check_leaves(node: &TreeNode) {
            match node {
                TreeNode::Leaf { class_counts, .. } => {
                    assert!(class_counts.iter().sum::<usize>() >= 3);
                }
                TreeNode::Split { left, right, .. } => {
                    check_leaves(left);
                    check_leaves(right);
                }
            }
        }
        check_leaves(tree.root());
    }

    #[test]
    fn try_predict_validates_length() {
        let d = dataset_from(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![0, 1]);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        assert!(tree.try_predict(&[1.0]).is_err());
        assert!(tree.try_predict(&[1.0, 0.0]).is_ok());
    }

    #[test]
    fn feature_split_counts_identify_informative_feature() {
        // Only feature 1 is informative.
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 7) as f64, i as f64]).collect();
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        let counts = tree.feature_split_counts();
        assert!(counts[1] >= 1);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn decision_path_length_bounded_by_depth() {
        let features: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| i % 4).collect();
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        for i in 0..64 {
            assert!(tree.decision_path_length(&[i as f64]) <= tree.depth());
        }
    }

    #[test]
    fn flat_walk_is_equivalent_to_pointer_walk() {
        // A deep, irregular tree (xor-style interaction) plus off-grid query
        // points: the flat array traversal must make the same decision as the
        // pointer-based reference walk on every input, including values that
        // sit exactly on split thresholds.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..24 {
            for j in 0..24 {
                let x = i as f64 / 24.0;
                let y = j as f64 / 24.0;
                features.push(vec![x, y]);
                labels.push(usize::from((x > 0.5) ^ (y > 0.3)) + usize::from(x > 0.8));
            }
        }
        let d = dataset_from(features.clone(), labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        assert!(tree.flat.len() == tree.node_count());
        for f in &features {
            assert_eq!(tree.predict(f), tree.predict_via_root(f));
        }
        // Off-grid and boundary probes.
        for i in 0..200 {
            let probe = vec![(i as f64 * 0.7919) % 1.0, (i as f64 * 0.5657) % 1.0];
            assert_eq!(tree.predict(&probe), tree.predict_via_root(&probe));
        }
        // Threshold values themselves (the >= side must win in both walks).
        fn thresholds(node: &TreeNode, out: &mut Vec<(usize, f64)>) {
            if let TreeNode::Split {
                feature,
                threshold,
                left,
                right,
            } = node
            {
                out.push((*feature, *threshold));
                thresholds(left, out);
                thresholds(right, out);
            }
        }
        let mut splits = Vec::new();
        thresholds(tree.root(), &mut splits);
        for (feature, threshold) in splits {
            let mut probe = vec![0.5, 0.5];
            probe[feature] = threshold;
            assert_eq!(tree.predict(&probe), tree.predict_via_root(&probe));
        }
    }

    #[test]
    fn flat_layout_places_left_child_adjacent() {
        let features: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| i % 4).collect();
        let d = dataset_from(features, labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        for (index, node) in tree.flat.iter().enumerate() {
            if node.feature != FlatNode::LEAF {
                assert_eq!(node.left as usize, index + 1, "preorder adjacency");
                assert!((node.right as usize) < tree.flat.len());
            }
        }
    }

    #[test]
    fn predict_batch_matches_individual_predictions() {
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, -(i as f64)]).collect();
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i % 5 == 0)).collect();
        let d = dataset_from(features.clone(), labels);
        let tree = DecisionTree::fit(&d, &DecisionTreeParams::default()).unwrap();
        let batch = tree.predict_batch(&features);
        for (i, f) in features.iter().enumerate() {
            assert_eq!(batch[i], tree.predict(f));
        }
    }
}
