//! Multi-output ridge regression, one of the rejected baseline models.
//!
//! The paper's design-decision section explains that quantitative (runtime-
//! predicting) models such as linear regression "required significantly more
//! information to make an accurate inference and were unable to capture the
//! relationship between the data and a kernel's runtime". This implementation
//! exists so that comparison can be reproduced: it predicts a runtime per
//! kernel and selects the argmin.

use crate::MlError;

/// Multi-output linear (ridge) regression fitted by the normal equations.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegression {
    /// `weights[output][feature]`, with the bias stored in the last column.
    weights: Vec<Vec<f64>>,
    num_features: usize,
}

impl LinearRegression {
    /// Fits a ridge-regularised least-squares model.
    ///
    /// `targets[i]` holds the target vector (e.g. per-kernel runtimes) of
    /// sample `i`. `ridge` is the L2 regularisation strength; a small positive
    /// value keeps the normal equations well conditioned.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] with no samples,
    /// [`MlError::ShapeMismatch`] on inconsistent rows, and
    /// [`MlError::Numerical`] if the system is singular.
    pub fn fit(features: &[Vec<f64>], targets: &[Vec<f64>], ridge: f64) -> Result<Self, MlError> {
        if features.is_empty() || targets.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if features.len() != targets.len() {
            return Err(MlError::ShapeMismatch {
                reason: format!(
                    "{} feature rows but {} target rows",
                    features.len(),
                    targets.len()
                ),
            });
        }
        let num_features = features[0].len();
        let num_outputs = targets[0].len();
        for row in features {
            if row.len() != num_features {
                return Err(MlError::ShapeMismatch {
                    reason: "feature rows have inconsistent lengths".to_string(),
                });
            }
        }
        for row in targets {
            if row.len() != num_outputs {
                return Err(MlError::ShapeMismatch {
                    reason: "target rows have inconsistent lengths".to_string(),
                });
            }
        }
        // Augment with a bias column: d = num_features + 1.
        let d = num_features + 1;
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![vec![0.0f64; num_outputs]; d];
        for (row, target) in features.iter().zip(targets) {
            let augmented: Vec<f64> = row.iter().copied().chain(std::iter::once(1.0)).collect();
            for i in 0..d {
                for j in 0..d {
                    xtx[i][j] += augmented[i] * augmented[j];
                }
                for (k, &t) in target.iter().enumerate() {
                    xty[i][k] += augmented[i] * t;
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate().take(d) {
            row[i] += ridge.max(0.0);
        }
        let solution = solve_multi(xtx, xty)?;
        // solution is d x num_outputs; transpose into per-output weight rows.
        let weights = (0..num_outputs)
            .map(|k| (0..d).map(|i| solution[i][k]).collect())
            .collect();
        Ok(Self {
            weights,
            num_features,
        })
    }

    /// Predicts the target vector for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureLengthMismatch`] on a wrong-length input.
    pub fn predict(&self, features: &[f64]) -> Result<Vec<f64>, MlError> {
        if features.len() != self.num_features {
            return Err(MlError::FeatureLengthMismatch {
                expected: self.num_features,
                found: features.len(),
            });
        }
        Ok(self
            .weights
            .iter()
            .map(|w| {
                let dot: f64 = w[..self.num_features]
                    .iter()
                    .zip(features)
                    .map(|(wi, xi)| wi * xi)
                    .sum();
                dot + w[self.num_features]
            })
            .collect())
    }

    /// Predicts the index of the smallest output (the "fastest kernel" when
    /// outputs are runtimes).
    ///
    /// # Errors
    ///
    /// See [`LinearRegression::predict`].
    pub fn predict_argmin(&self, features: &[f64]) -> Result<usize, MlError> {
        let outputs = self.predict(features)?;
        Ok(outputs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite outputs"))
            .map(|(i, _)| i)
            .unwrap_or(0))
    }

    /// Number of output targets.
    pub fn num_outputs(&self) -> usize {
        self.weights.len()
    }
}

/// Solves `A * X = B` for X by Gaussian elimination with partial pivoting,
/// where B has multiple right-hand-side columns.
fn solve_multi(mut a: Vec<Vec<f64>>, mut b: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, MlError> {
    let n = a.len();
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(MlError::Numerical {
                reason: "singular normal equations".to_string(),
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let pivot = a[col][col];
        // The pivot row itself is skipped below, so one snapshot per column
        // suffices for the whole elimination pass.
        let pivot_coeffs = a[col].clone();
        let pivot_rhs = b[col].clone();
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (k, &pivot_val) in pivot_coeffs.iter().enumerate().skip(col) {
                a[row][k] -= factor * pivot_val;
            }
            for (k, &pivot_val) in pivot_rhs.iter().enumerate() {
                b[row][k] -= factor * pivot_val;
            }
        }
    }
    for col in 0..n {
        let pivot = a[col][col];
        for value in b[col].iter_mut() {
            *value /= pivot;
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y0 = 2x0 + 3x1 + 1 ; y1 = -x0 + 4
        let features: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 17) as f64])
            .collect();
        let targets: Vec<Vec<f64>> = features
            .iter()
            .map(|f| vec![2.0 * f[0] + 3.0 * f[1] + 1.0, -f[0] + 4.0])
            .collect();
        let model = LinearRegression::fit(&features, &targets, 1e-9).unwrap();
        let pred = model.predict(&[10.0, 5.0]).unwrap();
        assert!((pred[0] - 36.0).abs() < 1e-6);
        assert!((pred[1] + 6.0).abs() < 1e-6);
        assert_eq!(model.num_outputs(), 2);
    }

    #[test]
    fn argmin_selects_smallest_output() {
        let features: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        // Output 0 grows, output 1 shrinks: argmin flips at x = 10.
        let targets: Vec<Vec<f64>> = features.iter().map(|f| vec![f[0], 20.0 - f[0]]).collect();
        let model = LinearRegression::fit(&features, &targets, 1e-9).unwrap();
        assert_eq!(model.predict_argmin(&[2.0]).unwrap(), 0);
        assert_eq!(model.predict_argmin(&[18.0]).unwrap(), 1);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(LinearRegression::fit(&[], &[], 0.0).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[vec![1.0], vec![2.0]], 0.0).is_err());
        assert!(
            LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[vec![1.0], vec![1.0]], 0.0)
                .is_err()
        );
    }

    #[test]
    fn predict_validates_feature_length() {
        let model =
            LinearRegression::fit(&[vec![1.0], vec![2.0]], &[vec![1.0], vec![2.0]], 1e-6).unwrap();
        assert!(model.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn ridge_handles_duplicate_features() {
        // Two identical columns make plain least squares singular; ridge should cope.
        let features: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..30).map(|i| vec![3.0 * i as f64]).collect();
        let model = LinearRegression::fit(&features, &targets, 1e-3).unwrap();
        let pred = model.predict(&[10.0, 10.0]).unwrap();
        assert!((pred[0] - 30.0).abs() < 0.5);
    }
}
