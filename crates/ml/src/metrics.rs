//! Evaluation metrics: accuracy, confusion matrices, geometric means and the
//! Kendall rank correlation reported in Table III of the paper.

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix: `matrix[actual][predicted]` counts.
///
/// # Panics
///
/// Panics if the slices differ in length or a label/prediction exceeds `num_classes`.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "predictions and labels must align"
    );
    let mut matrix = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(
            p < num_classes && l < num_classes,
            "class index out of range"
        );
        matrix[l][p] += 1;
    }
    matrix
}

/// Geometric mean of a sequence of positive values.
///
/// Returns 0 for an empty input. Non-positive entries are clamped to a tiny
/// positive value so a single zero does not collapse the whole mean.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Geometric-mean speed-up of `baseline` over `candidate`, i.e. the geomean of
/// `baseline[i] / candidate[i]`. Values above 1 mean the candidate is faster.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn geomean_speedup(baseline: &[f64], candidate: &[f64]) -> f64 {
    assert_eq!(baseline.len(), candidate.len(), "speedup inputs must align");
    let ratios: Vec<f64> = baseline
        .iter()
        .zip(candidate)
        .map(|(&b, &c)| b / c.max(1e-300))
        .collect();
    geometric_mean(&ratios)
}

/// Kendall rank correlation coefficient (tau-a) between two sequences.
///
/// The paper uses Kendall's tau to quantify the monotonic relationship between
/// each load-balancing kernel's runtime and each matrix feature (Table III);
/// a magnitude near 1 means the two quantities move together.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "kendall tau inputs must align");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
            // Ties contribute to neither count (tau-a convention).
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Per-class recall (diagonal of the row-normalised confusion matrix).
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<f64> {
    confusion
        .iter()
        .enumerate()
        .map(|(class, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[class] as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[0, 0], &[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn accuracy_panics_on_length_mismatch() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 1, 1, 2], &[0, 1, 2, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn geometric_mean_known_values() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geomean_speedup_is_ratio_geomean() {
        let baseline = vec![10.0, 10.0];
        let candidate = vec![5.0, 2.5];
        assert!((geomean_speedup(&baseline, &candidate) - (2.0f64 * 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_perfect_and_inverse() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![10.0, 20.0, 30.0, 40.0];
        let c = vec![4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&a, &b) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_uncorrelated_is_near_zero() {
        let a: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 37) % 101) as f64).collect();
        assert!(kendall_tau(&a, &b).abs() < 0.2);
    }

    #[test]
    fn kendall_tau_handles_ties_and_tiny_inputs() {
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
        let tau = kendall_tau(&[1.0, 1.0, 2.0], &[5.0, 5.0, 9.0]);
        assert!(tau > 0.0 && tau <= 1.0);
    }

    #[test]
    fn per_class_recall_from_confusion() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        let recall = per_class_recall(&m);
        assert_eq!(recall[0], 1.0);
        assert!((recall[1] - 2.0 / 3.0).abs() < 1e-12);
    }
}
