//! Error type for model construction and training.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling datasets or training models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The dataset is empty or otherwise unusable for training.
    EmptyDataset,
    /// Feature rows have inconsistent lengths, or labels and features differ in count.
    ShapeMismatch {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A model received a feature vector whose length does not match training.
    FeatureLengthMismatch {
        /// Number of features the model was trained with.
        expected: usize,
        /// Number of features provided at prediction time.
        found: usize,
    },
    /// A numerical routine failed (e.g. a singular system in least squares).
    Numerical {
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset contains no samples"),
            MlError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
            MlError::FeatureLengthMismatch { expected, found } => write!(
                f,
                "feature vector has {found} entries but the model expects {expected}"
            ),
            MlError::Numerical { reason } => write!(f, "numerical failure: {reason}"),
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MlError::EmptyDataset.to_string().contains("no samples"));
        let err = MlError::FeatureLengthMismatch {
            expected: 6,
            found: 3,
        };
        assert!(err.to_string().contains('6'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
