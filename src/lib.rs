//! Seer: predictive runtime kernel selection for irregular problems.
//!
//! This is the facade crate of the Seer reproduction (CGO 2024,
//! arXiv:2403.17017). It re-exports the public API of the workspace crates so
//! applications can depend on a single crate:
//!
//! * [`sparse`] — sparse formats, statistics, MatrixMarket I/O and the
//!   synthetic SuiteSparse-like collection,
//! * [`gpu`] — the analytical MI100-class GPU performance model,
//! * [`kernels`] — the eight SpMV kernel variants of the case study,
//! * [`ml`] — the CART decision tree, baselines, metrics and model export,
//! * [`core`] — the Seer abstraction itself: feature collection, GPU
//!   benchmarking, training and runtime inference.
//!
//! # Quickstart
//!
//! ```
//! use seer::core::training::{train, TrainingConfig};
//! use seer::core::inference::SeerPredictor;
//! use seer::gpu::Gpu;
//! use seer::sparse::collection::{generate, CollectionConfig};
//!
//! # fn main() -> Result<(), seer::core::SeerError> {
//! let gpu = Gpu::default();
//! let collection = generate(&CollectionConfig::tiny());
//! let outcome = train(&gpu, &collection, &TrainingConfig::fast())?;
//! let predictor = SeerPredictor::new(&gpu, outcome.models.clone());
//!
//! let matrix = &collection[0].matrix;
//! let selection = predictor.select(matrix, 19);
//! println!("Seer would launch {} for a 19-iteration run", selection.kernel);
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples under `examples/` walk through the full case study:
//! `quickstart`, `spmv_case_study`, `iterative_solver`, `custom_workload` and
//! `explain_model`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use seer_core as core;
pub use seer_gpu as gpu;
pub use seer_kernels as kernels;
pub use seer_ml as ml;
pub use seer_sparse as sparse;

/// Version string of the Seer reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
