//! Seer: predictive runtime kernel selection for irregular problems.
//!
//! This is the facade crate of the Seer reproduction (CGO 2024,
//! arXiv:2403.17017). It re-exports the public API of the workspace crates so
//! applications can depend on a single crate:
//!
//! * [`sparse`] — sparse formats, statistics, MatrixMarket I/O and the
//!   synthetic SuiteSparse-like collection,
//! * [`gpu`] — the analytical MI100-class GPU performance model,
//! * [`kernels`] — the eight SpMV kernel variants of the case study,
//! * [`ml`] — the CART decision tree, baselines, metrics and model export,
//! * [`core`] — the Seer abstraction itself: feature collection, GPU
//!   benchmarking, training, the runtime [`SeerEngine`] service and the
//!   sharded concurrent [`ServingPool`] front-end.
//!
//! Engines and pools are built over a [`Fleet`] of one or more modelled
//! devices: a multi-device fleet turns selection into `(kernel, device)`
//! placement and the pool into a device-aware router, while a single-device
//! fleet behaves exactly like the classic engine.
//!
//! # Quickstart
//!
//! Train once, then serve selections from a long-lived, thread-safe
//! [`SeerEngine`]. The engine memoizes feature collections and selection
//! plans per matrix (keyed by content fingerprint), so repeated and batched
//! requests on the same matrix pay the selection cost once:
//!
//! ```
//! use seer::SeerEngine;
//! use seer::core::training::TrainingConfig;
//! use seer::gpu::Gpu;
//! use seer::sparse::collection::{generate, CollectionConfig};
//!
//! # fn main() -> Result<(), seer::core::SeerError> {
//! let collection = generate(&CollectionConfig::tiny());
//! let (engine, outcome) =
//!     SeerEngine::train(Gpu::default(), &collection, &TrainingConfig::fast())?;
//! println!("selector accuracy: {:.0}%", outcome.accuracies.selector * 100.0);
//!
//! let matrix = &collection[0].matrix;
//! let selection = engine.select(matrix, 19);
//! println!("Seer would launch {} for a 19-iteration run", selection.kernel);
//!
//! // A second request on the same matrix is a plan-cache hit.
//! assert_eq!(engine.select(matrix, 19), selection);
//! assert_eq!(engine.stats().plan_hits, 1);
//!
//! // Batched selection shares the same cache.
//! let plans = engine.select_batch(&[(matrix, 1), (matrix, 19)]);
//! assert_eq!(plans[1], selection);
//! # Ok(())
//! # }
//! ```
//!
//! The runnable examples under `examples/` walk through the full case study:
//! `quickstart`, `spmv_case_study`, `iterative_solver`, `custom_workload` and
//! `explain_model`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use seer_core as core;
pub use seer_gpu as gpu;
pub use seer_kernels as kernels;
pub use seer_ml as ml;
pub use seer_sparse as sparse;

pub use seer_core::{
    AdmissionConfig, AdmissionPoolStats, DevicePoolStats, EngineStats, ExplorationPolicy,
    HistogramSnapshot, LatencySnapshot, PoolConfig, PoolStats, Priority, RecalibrationConfig,
    RoutingConfig, RoutingPoolStats, SeerEngine, ServingError, ServingPool, ServingRequest,
    ServingResponse, ShardStats, ShedPolicy, ShedReason, SubmitOutcome,
};
pub use seer_gpu::{
    DeviceFailed, DeviceId, DeviceRegistry, DeviceStatus, Fleet, FleetHandle, MembershipError,
};

/// Version string of the Seer reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
